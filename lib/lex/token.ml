(** C++ tokens.

    Keywords and punctuators are carried as strings (validated by the lexer
    against the tables below): the parser matches on [Kw "class"],
    [Punct "::"], etc., which keeps the grammar code close to the standard's
    terminology. *)

open Pdt_util

type t =
  | Ident of string
  | Kw of string
  | IntLit of string * int64      (** spelling, value *)
  | FloatLit of string * float    (** spelling, value *)
  | CharLit of string * int       (** spelling, code point *)
  | StringLit of string * string  (** spelling (with quotes), cooked value *)
  | Punct of string
  | Eof

(** A located token.  [bol] is true for the first token of a physical line
    (the preprocessor uses it to recognize directives); [space] is true when
    the token was preceded by whitespace or a comment (used for faithful
    stringification and text reconstruction). *)
type tok = { tok : t; loc : Srcloc.t; bol : bool; space : bool }

let keywords =
  [ "asm"; "auto"; "bool"; "break"; "case"; "catch"; "char"; "class"; "const";
    "const_cast"; "continue"; "default"; "delete"; "do"; "double";
    "dynamic_cast"; "else"; "enum"; "explicit"; "export"; "extern"; "false";
    "float"; "for"; "friend"; "goto"; "if"; "inline"; "int"; "long";
    "mutable"; "namespace"; "new"; "operator"; "private"; "protected";
    "public"; "register"; "reinterpret_cast"; "return"; "short"; "signed";
    "sizeof"; "static"; "static_cast"; "struct"; "switch"; "template"; "this";
    "throw"; "true"; "try"; "typedef"; "typeid"; "typename"; "union";
    "unsigned"; "using"; "virtual"; "void"; "volatile"; "wchar_t"; "while" ]

let keyword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 97 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_keyword s = Hashtbl.mem keyword_set s

(** All punctuators, longest first so the lexer can use maximal munch. *)
let punctuators =
  [ "<<="; ">>="; "->*"; "..."; "::"; "->"; "++"; "--"; "<<"; ">>"; "<=";
    ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "&="; "|=";
    "^="; "##"; ".*"; "{"; "}"; "["; "]"; "("; ")"; ";"; ":"; "?"; "."; "+";
    "-"; "*"; "/"; "%"; "^"; "&"; "|"; "~"; "!"; "="; "<"; ">"; ","; "#" ]

(** Spelling of a token, without any surrounding whitespace. *)
let spelling = function
  | Ident s | Kw s | Punct s -> s
  | IntLit (s, _) | FloatLit (s, _) | CharLit (s, _) | StringLit (s, _) -> s
  | Eof -> "<eof>"

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Kw s -> Printf.sprintf "keyword '%s'" s
  | IntLit (s, _) -> Printf.sprintf "integer literal '%s'" s
  | FloatLit (s, _) -> Printf.sprintf "floating literal '%s'" s
  | CharLit (s, _) -> Printf.sprintf "character literal %s" s
  | StringLit (s, _) -> Printf.sprintf "string literal %s" s
  | Punct s -> Printf.sprintf "'%s'" s
  | Eof -> "end of input"

let equal_kind a b =
  match (a, b) with
  | Ident x, Ident y | Kw x, Kw y | Punct x, Punct y -> String.equal x y
  | IntLit (x, _), IntLit (y, _)
  | FloatLit (x, _), FloatLit (y, _)
  | CharLit (x, _), CharLit (y, _)
  | StringLit (x, _), StringLit (y, _) -> String.equal x y
  | Eof, Eof -> true
  | _ -> false

(** Reconstruct program text from a token sequence, inserting single spaces
    where the original had whitespace.  Used by the preprocessor for macro
    text recording and by TAU's source rewriter. *)
let text_of_toks toks =
  let b = Buffer.create 64 in
  List.iteri
    (fun i t ->
      if i > 0 && t.space then Buffer.add_char b ' ';
      Buffer.add_string b (spelling t.tok))
    toks;
  Buffer.contents b
