(** Hand-written maximal-munch lexer for the C++ subset.

    Produces the full token stream of one physical file, including [#]
    punctuators: preprocessing directives are recognized later by [pdt_pp]
    using the [bol] flags.  Line splices ([\ ] at end of line) are handled
    here so the preprocessor sees logical lines. *)

open Pdt_util

type state = {
  src : string;
  file : string;
  mutable pos : int;   (* byte offset *)
  mutable line : int;  (* 1-based *)
  mutable col : int;   (* 1-based *)
  mutable bol : bool;
  mutable space : bool;
  diags : Diag.engine;
}

let create ~diags ~file src =
  { src; file; pos = 0; line = 1; col = 1; bol = true; space = false; diags }

let loc st = Srcloc.make ~file:st.file ~line:st.line ~col:st.col

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  let c = st.src.[st.pos] in
  st.pos <- st.pos + 1;
  if c = '\n' then begin
    st.line <- st.line + 1;
    st.col <- 1;
    st.bol <- true
  end
  else st.col <- st.col + 1;
  c

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Skip whitespace and comments; record whether any was skipped. *)
let rec skip_trivia st =
  if at_end st then ()
  else
    match peek st with
    | ' ' | '\t' | '\r' | '\n' ->
        ignore (advance st);
        st.space <- true;
        skip_trivia st
    | '\\' when peek2 st = '\n' ->
        (* line splice *)
        ignore (advance st);
        ignore (advance st);
        st.space <- true;
        skip_trivia st
    | '/' when peek2 st = '/' ->
        while (not (at_end st)) && peek st <> '\n' do
          ignore (advance st)
        done;
        st.space <- true;
        skip_trivia st
    | '/' when peek2 st = '*' ->
        let start = loc st in
        ignore (advance st);
        ignore (advance st);
        let rec finish () =
          (* unterminated comment: record and stop — the rest of the file
             is inside the comment, so there is nothing left to lex *)
          if at_end st then Diag.error st.diags start "unterminated comment"
          else if peek st = '*' && peek2 st = '/' then begin
            ignore (advance st);
            ignore (advance st)
          end
          else begin
            ignore (advance st);
            finish ()
          end
        in
        finish ();
        st.space <- true;
        skip_trivia st
    | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (not (at_end st)) && is_ident_char (peek st) do
    ignore (advance st)
  done;
  let s = String.sub st.src start (st.pos - start) in
  if Token.is_keyword s then Token.Kw s else Token.Ident s

let lex_number st =
  let start = st.pos in
  let seen_dot = ref false and seen_exp = ref false in
  let is_hex =
    peek st = '0' && (peek2 st = 'x' || peek2 st = 'X')
  in
  if is_hex then begin
    ignore (advance st);
    ignore (advance st);
    while (not (at_end st)) && is_hex_digit (peek st) do
      ignore (advance st)
    done
  end
  else begin
    while
      (not (at_end st))
      &&
      let c = peek st in
      if is_digit c then true
      else if c = '.' && not !seen_dot && not !seen_exp then begin
        seen_dot := true;
        true
      end
      else if (c = 'e' || c = 'E') && not !seen_exp && is_digit st.src.[st.pos - 1]
      then begin
        seen_exp := true;
        true
      end
      else if (c = '+' || c = '-') && !seen_exp
              && (st.src.[st.pos - 1] = 'e' || st.src.[st.pos - 1] = 'E')
      then true
      else false
    do
      ignore (advance st)
    done
  end;
  (* suffixes *)
  while
    (not (at_end st))
    && (match peek st with
        | 'u' | 'U' | 'l' | 'L' -> true
        | 'f' | 'F' when (!seen_dot || !seen_exp) && not is_hex -> true
        | _ -> false)
  do
    ignore (advance st)
  done;
  let s = String.sub st.src start (st.pos - start) in
  let at = Srcloc.make ~file:st.file ~line:st.line ~col:st.col in
  if (!seen_dot || !seen_exp) && not is_hex then
    let numeric =
      let rec strip i =
        if i > 0 && (match s.[i - 1] with 'f' | 'F' | 'l' | 'L' -> true | _ -> false)
        then strip (i - 1)
        else i
      in
      String.sub s 0 (strip (String.length s))
    in
    match float_of_string_opt numeric with
    | Some v -> Token.FloatLit (s, v)
    | None ->
        Diag.error st.diags at "invalid floating literal '%s'" s;
        Token.FloatLit (s, 0.0)
  else
    let numeric =
      let rec strip i =
        if i > 0 && (match s.[i - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
        then strip (i - 1)
        else i
      in
      String.sub s 0 (strip (String.length s))
    in
    match Int64.of_string_opt numeric with
    | Some v -> Token.IntLit (s, v)
    | None ->
        Diag.error st.diags at "integer literal '%s' out of range" s;
        Token.IntLit (s, 0L)

let escape_value st at = function
  | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0 | 'a' -> 7 | 'b' -> 8
  | 'f' -> 12 | 'v' -> 11 | '\\' -> 92 | '\'' -> 39 | '"' -> 34 | '?' -> 63
  | c ->
      Diag.warn st.diags at "unknown escape sequence '\\%c'" c;
      Char.code c

let lex_char_or_string st quote =
  let at = loc st in
  let start = st.pos in
  ignore (advance st);
  let cooked = Buffer.create 8 in
  let rec go () =
    if at_end st || peek st = '\n' then
      (* unterminated literal: record and close it at the line break so
         lexing resumes on the next line *)
      Diag.error st.diags at "unterminated %s literal"
        (if quote = '"' then "string" else "character")
    else
      let c = advance st in
      if c = quote then ()
      else if c = '\\' then begin
        if at_end st then Diag.error st.diags at "unterminated escape"
        else begin
          let e = advance st in
          Buffer.add_char cooked (Char.chr (escape_value st at e land 0xff));
          go ()
        end
      end
      else begin
        Buffer.add_char cooked c;
        go ()
      end
  in
  go ();
  let spelling = String.sub st.src start (st.pos - start) in
  let v = Buffer.contents cooked in
  if quote = '"' then Token.StringLit (spelling, v)
  else
    let code = if String.length v = 0 then 0 else Char.code v.[0] in
    Token.CharLit (spelling, code)

let starts_with st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let lex_punct st =
  let at = loc st in
  let rec try_puncts = function
    | [] ->
        let c = peek st in
        ignore (advance st);
        Diag.error st.diags at "stray character '%c' in program" c;
        Token.Punct (String.make 1 c)
    | p :: rest ->
        if starts_with st p then begin
          for _ = 1 to String.length p do
            ignore (advance st)
          done;
          Token.Punct p
        end
        else try_puncts rest
  in
  try_puncts Token.punctuators

(** Lex one token; returns [Eof] at end of input. *)
let next st : Token.tok =
  st.space <- false;
  skip_trivia st;
  let bol = st.bol in
  let space = st.space in
  let tloc = loc st in
  if at_end st then { tok = Eof; loc = tloc; bol; space }
  else begin
    st.bol <- false;
    let c = peek st in
    let tok =
      if is_ident_start c then lex_ident st
      else if is_digit c then lex_number st
      else if c = '.' && is_digit (peek2 st) then lex_number st
      else if c = '"' then lex_char_or_string st '"'
      else if c = '\'' then lex_char_or_string st '\''
      else lex_punct st
    in
    { tok; loc = tloc; bol; space }
  end

(** Lex an entire file to a token list (without the trailing [Eof]). *)
let tokenize ~diags ~file src =
  let go () =
    let st = create ~diags ~file src in
    let rec loop acc =
      let t = next st in
      match t.tok with Token.Eof -> List.rev acc | _ -> loop (t :: acc)
    in
    loop []
  in
  if Pdt_util.Trace.on () then
    Pdt_util.Trace.span ~cat:"lex"
      ~args:[ ("file", Pdt_util.Trace.Str file) ]
      "lex.tokenize" go
  else go ()
