(** PDT driver: the front-end pipeline in one call.

    [compile] runs preprocess → parse → semantic analysis on one translation
    unit held in a virtual file system and returns the IL program plus the
    artifacts each stage produced.  This is the programmatic equivalent of
    invoking the paper's "C++ Front End + IL Analyzer" toolchain; the IL
    Analyzer proper ([pdt_analyzer]) then turns [program] into a PDB. *)

open Pdt_util

type compilation = {
  program : Pdt_il.Il.program;
  tu : Pdt_ast.Ast.translation_unit;
  pp : Pdt_pp.Preproc.result;
  diags : Diag.engine;
}

exception Compile_error of string
(** Raised by {!compile_exn} when the front end reports errors. *)

(** Compile [main] from [vfs].

    @param opts semantic-analysis options (instantiation mode etc.)
    @param predefined additional predefined macros
    @param limits resource budgets; defaults to {!Limits.default_budgets}.
      A shared {!Limits.t} governor is threaded through every stage, so
      pathological inputs degrade into recorded [Fatal] diagnostics and a
      partial result instead of crashing the process. *)
let compile ?opts ?(predefined = []) ?limits ~vfs main : compilation =
  let limits =
    match limits with Some l -> l | None -> Limits.default ()
  in
  let diags = Diag.create () in
  let predefined = ("__PDT__", "1") :: predefined in
  let pp = Pdt_pp.Preproc.run ~predefined ~limits ~vfs ~diags main in
  let tu =
    Pdt_parse.Parser.parse_translation_unit ~limits ~diags ~file:main pp.tokens
  in
  let program = Pdt_sema.Sema.analyze ?opts ~limits ~diags pp tu in
  { program; tu; pp; diags }

(** Like {!compile} but raises {!Compile_error} if any error was reported. *)
let compile_exn ?opts ?predefined ~vfs main : compilation =
  let c = compile ?opts ?predefined ~vfs main in
  if Diag.has_errors c.diags then
    raise (Compile_error (Diag.to_string c.diags));
  c

(** Compile a single in-memory source string (convenience for tests and
    examples).  The source is mounted as [main.cpp]; [extra_files] are added
    alongside it and the mini-STL include directory can be provided by the
    caller through [vfs]. *)
let compile_string ?opts ?predefined ?(extra_files = []) ?vfs src : compilation =
  let vfs = match vfs with Some v -> v | None -> Vfs.create () in
  List.iter (fun (p, c) -> Vfs.add_file vfs p c) extra_files;
  Vfs.add_file vfs "main.cpp" src;
  compile ?opts ?predefined ~vfs "main.cpp"

(** Compile each translation unit of a project and merge the resulting
    PDBs (the pdtc-then-pdbmerge workflow of a multi-file build).  Returns
    the merged program database; duplicate template instantiations across
    translation units are eliminated by the merge. *)
let compile_project ?opts ?predefined ~vfs (mains : string list) :
    Pdt_pdb.Pdb.t * compilation list =
  let compilations = List.map (compile ?opts ?predefined ~vfs) mains in
  let pdbs =
    List.map (fun c -> Pdt_analyzer.Analyzer.run c.program) compilations
  in
  (Pdt_ductape.Ductape.merge pdbs, compilations)
