(** Wire protocol between the farm driver and [pdbworker] processes.

    The protocol (DESIGN.md §8) is deliberately minimal: length-prefixed
    binary frames over a [socketpair], one tag byte plus a type-specific
    body per frame.  Each frame is a little-endian [u32] byte length
    followed by that many payload bytes; strings inside a payload are
    [u32] length + bytes, lists are [u32] count + items.  There is no
    framing resynchronization on purpose — a worker is {e crash-only}, so
    a malformed or torn frame is treated exactly like a dead worker
    (kill, reap, respawn, retry the unit) rather than parsed around.

    Messages:

    - ['C'] {e Config} (driver → worker, once): everything a fresh worker
      process needs to run {!Build.build_unit} — build options, resource
      budgets, and the full VFS file table (workers share no memory with
      the driver; the VFS of a project workload is a few hundred KB and
      ships once per worker lifetime).
    - ['H'] {e Hello} (worker → driver, once): protocol version + pid,
      sent after the Config is applied; the driver treats a version
      mismatch as a permanently-failed worker, not a retry.
    - ['U'] {e Unit} (driver → worker): one translation unit to build.
    - ['R'] {e Result} (worker → driver): the unit's outcome, mirroring
      {!Build.unit_result} (status, serialized PDB, timings, deps).
    - ['B'] {e Heartbeat} (worker → driver): sent every [heartbeat_ms]
      by a worker-side thread, carrying the id of the unit in flight (or
      {!no_unit} when idle).  Silence past the driver's liveness window
      means the worker is wedged and gets SIGKILLed.
    - ['Q'] {e Quit} (driver → worker): drain and exit 0.

    Decode errors raise {!Proto_error}; the driver maps it to the same
    path as a worker crash. *)

exception Proto_error of string

let version = 1

(** Heartbeat unit id meaning "idle, no unit in flight". *)
let no_unit = 0xFFFF_FFFF

(* An over-generous sanity bound: no frame in this protocol legitimately
   approaches it, so anything larger is a corrupt length prefix — fail
   the frame (and thus the worker) instead of allocating garbage. *)
let frame_max = 256 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                    *)
(* ------------------------------------------------------------------ *)

let put_u32 b n =
  let n = n land 0xFFFF_FFFF in
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff))

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put l =
  put_u32 b (List.length l);
  List.iter (put b) l

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then raise (Proto_error "truncated frame")

let get_u32 c =
  need c 4;
  let at i = Char.code c.s.[c.pos + i] in
  let v = at 0 lor (at 1 lsl 8) lor (at 2 lsl 16) lor (at 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_bool c =
  need c 1;
  let v = c.s.[c.pos] <> '\000' in
  c.pos <- c.pos + 1;
  v

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c get =
  let n = get_u32 c in
  if n > String.length c.s then raise (Proto_error "bad list count");
  List.init n (fun _ -> get c)

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type config = {
  c_cache_dir : string option;
  c_retries : int;
  c_fail_fast : bool;
  c_sema_used : bool;
  c_sema_spec : bool;
  c_mapping : Pdt_analyzer.Analyzer.mapping;
  c_limits : Pdt_util.Limits.budgets;
  c_pdb_format : Pdt_pdb.Pdb_io.format;
  c_include_paths : string list;
  c_disk_fallback : bool;
  c_files : (string * string) list;  (** the full VFS table, path → bytes *)
  c_heartbeat_ms : int;
}

(** Worker-side unit outcome.  [Degraded]/[Failed] payloads travel in the
    Result's message field; the driver rebuilds {!Build.status} from the
    pair. *)
type unit_status = S_compiled | S_cached | S_degraded | S_failed

type msg =
  | Config of config
  | Hello of { version : int; pid : int }
  | Unit of { id : int; source : string }
  | Result of {
      id : int;
      status : unit_status;
      message : string;         (** Degraded/Failed detail; else "" *)
      pdb : string option;      (** serialized (ASCII or PDB-B) container *)
      seconds : float;
      deps : string list;
      cone_truncated : bool;
    }
  | Heartbeat of { unit_id : int }
  | Quit

let config_of_options (o : Build.options) ~(vfs : Pdt_util.Vfs.t)
    ~(heartbeat_ms : int) : config =
  { c_cache_dir = o.Build.cache_dir;
    c_retries = o.Build.retries;
    c_fail_fast = o.Build.fail_fast;
    c_sema_used = o.Build.sema.Pdt_sema.Sema.instantiate_used;
    c_sema_spec = o.Build.sema.Pdt_sema.Sema.map_specializations;
    c_mapping = o.Build.mapping;
    c_limits = o.Build.limits;
    c_pdb_format = o.Build.pdb_format;
    c_include_paths = vfs.Pdt_util.Vfs.include_paths;
    c_disk_fallback = vfs.Pdt_util.Vfs.disk_fallback;
    c_files =
      List.map
        (fun p ->
          match Pdt_util.Vfs.read_raw vfs p with
          | Some contents -> (p, contents)
          | None -> (p, ""))
        (Pdt_util.Vfs.files vfs);
    c_heartbeat_ms = heartbeat_ms }

(** Reconstruct build options in the worker: always one domain (the farm's
    parallelism is processes, not domains-within-workers). *)
let options_of_config (c : config) : Build.options =
  { Build.domains = 1;
    cache_dir = c.c_cache_dir;
    retries = c.c_retries;
    fail_fast = c.c_fail_fast;
    sema =
      { Pdt_sema.Sema.instantiate_used = c.c_sema_used;
        map_specializations = c.c_sema_spec };
    mapping = c.c_mapping;
    limits = c.c_limits;
    pdb_format = c.c_pdb_format }

let vfs_of_config (c : config) : Pdt_util.Vfs.t =
  let vfs = Pdt_util.Vfs.create ~include_paths:c.c_include_paths () in
  Pdt_util.Vfs.set_disk_fallback vfs c.c_disk_fallback;
  List.iter (fun (p, s) -> Pdt_util.Vfs.add_file vfs p s) c.c_files;
  vfs

(* ------------------------------------------------------------------ *)
(* Encode / decode                                                     *)
(* ------------------------------------------------------------------ *)

let mapping_code = function
  | Pdt_analyzer.Analyzer.Location_based -> 0
  | Pdt_analyzer.Analyzer.Il_ids -> 1

let mapping_of_code = function
  | 0 -> Pdt_analyzer.Analyzer.Location_based
  | 1 -> Pdt_analyzer.Analyzer.Il_ids
  | n -> raise (Proto_error (Printf.sprintf "bad mapping code %d" n))

let format_code = function
  | Pdt_pdb.Pdb_io.Ascii -> 0
  | Pdt_pdb.Pdb_io.Binary -> 1

let format_of_code = function
  | 0 -> Pdt_pdb.Pdb_io.Ascii
  | 1 -> Pdt_pdb.Pdb_io.Binary
  | n -> raise (Proto_error (Printf.sprintf "bad pdb-format code %d" n))

let status_code = function
  | S_compiled -> 0
  | S_cached -> 1
  | S_degraded -> 2
  | S_failed -> 3

let status_of_code = function
  | 0 -> S_compiled
  | 1 -> S_cached
  | 2 -> S_degraded
  | 3 -> S_failed
  | n -> raise (Proto_error (Printf.sprintf "bad status code %d" n))

let encode (m : msg) : string =
  let b = Buffer.create 256 in
  (match m with
  | Config c ->
      Buffer.add_char b 'C';
      put_u32 b version;
      put_str b (Option.value c.c_cache_dir ~default:"");
      put_bool b (c.c_cache_dir <> None);
      put_u32 b c.c_retries;
      put_bool b c.c_fail_fast;
      put_bool b c.c_sema_used;
      put_bool b c.c_sema_spec;
      put_u32 b (mapping_code c.c_mapping);
      put_u32 b (format_code c.c_pdb_format);
      let l = c.c_limits in
      put_u32 b l.Pdt_util.Limits.max_include_depth;
      put_u32 b l.Pdt_util.Limits.max_macro_depth;
      put_u32 b l.Pdt_util.Limits.max_tokens;
      put_u32 b l.Pdt_util.Limits.max_parse_depth;
      put_u32 b l.Pdt_util.Limits.max_instantiation_depth;
      put_u32 b l.Pdt_util.Limits.max_errors;
      put_list b put_str c.c_include_paths;
      put_bool b c.c_disk_fallback;
      put_list b
        (fun b (p, s) ->
          put_str b p;
          put_str b s)
        c.c_files;
      put_u32 b c.c_heartbeat_ms
  | Hello { version; pid } ->
      Buffer.add_char b 'H';
      put_u32 b version;
      put_u32 b pid
  | Unit { id; source } ->
      Buffer.add_char b 'U';
      put_u32 b id;
      put_str b source
  | Result r ->
      Buffer.add_char b 'R';
      put_u32 b r.id;
      put_u32 b (status_code r.status);
      put_str b r.message;
      put_bool b (r.pdb <> None);
      put_str b (Option.value r.pdb ~default:"");
      (* %h hex floats round-trip exactly *)
      put_str b (Printf.sprintf "%h" r.seconds);
      put_list b put_str r.deps;
      put_bool b r.cone_truncated
  | Heartbeat { unit_id } ->
      Buffer.add_char b 'B';
      put_u32 b unit_id
  | Quit -> Buffer.add_char b 'Q');
  Buffer.contents b

let decode (payload : string) : msg =
  if payload = "" then raise (Proto_error "empty frame");
  let c = { s = payload; pos = 1 } in
  let m =
    match payload.[0] with
    | 'C' ->
        let v = get_u32 c in
        if v <> version then
          raise (Proto_error (Printf.sprintf "protocol version %d, want %d" v version));
        let cache_dir_s = get_str c in
        let cache_dir_some = get_bool c in
        let retries = get_u32 c in
        let fail_fast = get_bool c in
        let sema_used = get_bool c in
        let sema_spec = get_bool c in
        let mapping = mapping_of_code (get_u32 c) in
        let fmt = format_of_code (get_u32 c) in
        let max_include_depth = get_u32 c in
        let max_macro_depth = get_u32 c in
        let max_tokens = get_u32 c in
        let max_parse_depth = get_u32 c in
        let max_instantiation_depth = get_u32 c in
        let max_errors = get_u32 c in
        let include_paths = get_list c get_str in
        let disk_fallback = get_bool c in
        let files =
          get_list c (fun c ->
              let p = get_str c in
              let s = get_str c in
              (p, s))
        in
        let heartbeat_ms = get_u32 c in
        Config
          { c_cache_dir = (if cache_dir_some then Some cache_dir_s else None);
            c_retries = retries;
            c_fail_fast = fail_fast;
            c_sema_used = sema_used;
            c_sema_spec = sema_spec;
            c_mapping = mapping;
            c_limits =
              { Pdt_util.Limits.max_include_depth;
                max_macro_depth;
                max_tokens;
                max_parse_depth;
                max_instantiation_depth;
                max_errors };
            c_pdb_format = fmt;
            c_include_paths = include_paths;
            c_disk_fallback = disk_fallback;
            c_files = files;
            c_heartbeat_ms = heartbeat_ms }
    | 'H' ->
        let version = get_u32 c in
        let pid = get_u32 c in
        Hello { version; pid }
    | 'U' ->
        let id = get_u32 c in
        let source = get_str c in
        Unit { id; source }
    | 'R' ->
        let id = get_u32 c in
        let status = status_of_code (get_u32 c) in
        let message = get_str c in
        let has_pdb = get_bool c in
        let pdb_s = get_str c in
        let seconds =
          let s = get_str c in
          match float_of_string_opt s with
          | Some f -> f
          | None -> raise (Proto_error ("bad seconds field " ^ s))
        in
        let deps = get_list c get_str in
        let cone_truncated = get_bool c in
        Result
          { id; status; message;
            pdb = (if has_pdb then Some pdb_s else None);
            seconds; deps; cone_truncated }
    | 'B' -> Heartbeat { unit_id = get_u32 c }
    | 'Q' -> Quit
    | t -> raise (Proto_error (Printf.sprintf "unknown tag %C" t))
  in
  if c.pos <> String.length payload then
    raise (Proto_error "trailing bytes in frame");
  m

(* ------------------------------------------------------------------ *)
(* Blocking frame I/O (worker side)                                    *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len

(** Write one frame: 4-byte LE length + payload, as a single buffer so a
    scheduler preemption can't interleave two writers' headers.  (The
    worker still serializes Result and Heartbeat writes with a mutex; this
    just keeps the syscall count down.) *)
let write_frame fd (payload : string) : unit =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr (n land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

(* [false] = EOF before any byte; EOF mid-buffer is a torn frame. *)
let really_read fd buf off len : bool =
  let rec go off len got_any =
    if len = 0 then true
    else
      match Unix.read fd buf off len with
      | 0 -> if got_any then raise (Proto_error "eof inside frame") else false
      | n -> go (off + n) (len - n) true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got_any
  in
  go off len false

(** Read one frame, blocking.  [None] on clean EOF (peer closed between
    frames); {!Proto_error} on a torn or oversized frame. *)
let read_frame fd : string option =
  let hdr = Bytes.create 4 in
  if not (really_read fd hdr 0 4) then None
  else begin
    let at i = Char.code (Bytes.get hdr i) in
    let n = at 0 lor (at 1 lsl 8) lor (at 2 lsl 16) lor (at 3 lsl 24) in
    if n > frame_max then
      raise (Proto_error (Printf.sprintf "frame length %d exceeds bound" n));
    let buf = Bytes.create n in
    if n > 0 && not (really_read fd buf 0 n) then
      raise (Proto_error "eof inside frame");
    Some (Bytes.to_string buf)
  end

(* ------------------------------------------------------------------ *)
(* Incremental frame assembly (driver side)                            *)
(* ------------------------------------------------------------------ *)

(** Reassembles frames from the byte chunks a non-blocking read loop
    produces.  The driver owns one per worker: [feed] whatever arrived,
    then drain [next] until it returns [None]. *)
module Assembler = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t (src : Bytes.t) (n : int) =
    let cap = Bytes.length t.buf in
    if t.len + n > cap then begin
      let cap' = max (t.len + n) (2 * cap) in
      let buf' = Bytes.create cap' in
      Bytes.blit t.buf 0 buf' 0 t.len;
      t.buf <- buf'
    end;
    Bytes.blit src 0 t.buf t.len n;
    t.len <- t.len + n

  let next t : string option =
    if t.len < 4 then None
    else begin
      let at i = Char.code (Bytes.get t.buf i) in
      let n = at 0 lor (at 1 lsl 8) lor (at 2 lsl 16) lor (at 3 lsl 24) in
      if n > frame_max then
        raise (Proto_error (Printf.sprintf "frame length %d exceeds bound" n));
      if t.len < 4 + n then None
      else begin
        let payload = Bytes.sub_string t.buf 4 n in
        Bytes.blit t.buf (4 + n) t.buf 0 (t.len - 4 - n);
        t.len <- t.len - 4 - n;
        Some payload
      end
    end
end
