(** Incremental re-analysis: patch in, delta out.

    A full {!Build.build} re-merges every unit's PDB even when the unit
    cache serves most compiles.  This driver keeps enough state between
    runs to do strictly less work after an edit:

    - {e per-unit dependency fingerprints} — the unit's {!Cache.key}
      (content hash over the lexical include closure, whitespace-
      normalized) plus a hash over the dependency set the previous
      compile {e actually read} (recorded by the {!Pdt_util.Vfs} read
      recorder during preprocessing).  A unit whose fingerprint is
      unchanged is {e reused}: it is not recompiled, and usually not even
      loaded;
    - {e memoized partial merges} — the build plan is partitioned into
      fixed-size groups whose merged PDBs are stored in the same
      self-healing content-addressed {!Cache} (keyed by the member unit
      keys).  An edit dirties only the groups containing affected units;
      clean groups splice their stale-free contribution straight from the
      cache without touching member PDBs.  The top-level merge over group
      partials is byte-identical to a flat merge of all units because
      {!Pdt_ductape.Ductape.merge} is canonical under grouping (the same
      theorem behind {!Merge_par});
    - {e a state file} ([incremental.state] in the cache dir, written
      atomically) mapping each source to its key and recorded dependency
      paths.  A missing or corrupt state file merely degrades to a full
      re-analysis — it can never produce wrong output, because reuse
      additionally requires the content-addressed cache to produce the
      bytes.

    Degraded units, units whose include cone was truncated by the depth
    budget, and failed units never enter the state file or the group
    cache: they are re-analyzed on every run until they build clean.

    Fault tolerance: any exception escaping the delta path (injected
    faults included) falls back to a plain {!Build.build} — a full
    remerge — so a mid-build fault can never leave a half-spliced PDB.
    The fallback is counted under the [incr.fallback] Perf counter.

    Stats surface as [reanalyzed=N reused=M] from [pdbbuild
    --incremental] and as [incr.*] Perf counters / ["incr"]-category
    trace spans. *)

open Pdt_util
module P = Pdt_pdb.Pdb

type options = {
  build : Build.options;
  group_size : int;    (** units per memoized partial merge *)
  state_file : string option;
      (** default: [incremental.state] inside the cache dir *)
}

let default_options =
  { build = Build.default_options; group_size = 8; state_file = None }

(* ------------------------------------------------------------------ *)
(* Persistent state                                                    *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_source : string;
  e_key : string;           (* Cache.key when the unit was last built *)
  e_dep_hash : string;      (* hash over the recorded dependency contents *)
  e_deps : string list;     (* normalized paths the compile actually read *)
}

let state_magic = "PDT-INCR v1"

(* Hash of a dependency set's current contents.  Normalized like the
   cache key, so whitespace-only edits keep the hash; a missing file
   hashes to a marker, so deletion changes it. *)
let dep_hash ~vfs (deps : string list) : string =
  Hashutil.strings
    (List.concat_map
       (fun p ->
         match Vfs.read_raw vfs p with
         | Some c -> [ p; Cache.normalize_for_key c ]
         | None -> [ p; "\x00missing" ])
       (List.sort_uniq compare deps))

(* One line per unit, tab-separated: source, key, dep hash, then the dep
   paths.  A digest header binds the whole body, mirroring cache
   entries: any damage fails one comparison and the state is ignored. *)
let render_state (entries : entry list) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      let fields = e.e_source :: e.e_key :: e.e_dep_hash :: e.e_deps in
      if
        List.for_all
          (fun f -> not (String.contains f '\t' || String.contains f '\n'))
          fields
      then Buffer.add_string b (String.concat "\t" fields ^ "\n"))
    entries;
  let body = Buffer.contents b in
  Printf.sprintf "%s digest=%s\n%s" state_magic (Hashutil.string body) body

let parse_state (content : string) : entry list option =
  match String.index_opt content '\n' with
  | None -> None
  | Some i ->
      let hdr = String.sub content 0 i in
      let body = String.sub content (i + 1) (String.length content - i - 1) in
      if hdr <> Printf.sprintf "%s digest=%s" state_magic (Hashutil.string body)
      then None
      else
        Some
          (String.split_on_char '\n' body
          |> List.filter_map (fun line ->
                 match String.split_on_char '\t' line with
                 | source :: key :: dh :: deps when source <> "" ->
                     Some
                       { e_source = source; e_key = key; e_dep_hash = dh;
                         e_deps = deps }
                 | _ -> None))

let load_state path : entry list =
  match
    (try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> Some (really_input_string ic (in_channel_length ic)))
     with Sys_error _ | End_of_file -> None)
  with
  | None -> []
  | Some content -> Option.value (parse_state content) ~default:[]

(* Atomic write, same discipline as cache entries: per-process/per-domain
   temp name, then rename; best-effort — a lost state file only costs the
   next run a full re-analysis. *)
let save_state path (entries : entry list) : unit =
  try
    Cache.mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let oc = open_out_bin tmp in
    (try
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (render_state entries));
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)
  with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type disposition =
  | Reused            (** fingerprint unchanged — not recompiled; spliced
                          from a memoized group or the unit cache *)
  | Loaded            (** served by the unit cache while its group was
                          re-merged *)
  | Recompiled        (** compiled this run *)
  | Degraded of string
  | Failed of string

type unit_info = {
  source : string;
  disposition : disposition;
  reason : string;    (** why the unit was (or was not) re-analyzed *)
  seconds : float;
}

type result = {
  merged : P.t;
  units : unit_info list;      (** in input order *)
  reanalyzed : int;            (** units recompiled: [Recompiled] +
                                   [Degraded] + [Failed] *)
  reused : int;                (** [Reused] + [Loaded]; always
                                   [reanalyzed + reused = total units] *)
  fallback : bool;             (** the delta path was abandoned and a full
                                   {!Build.build} ran instead *)
  groups_reused : int;         (** partial merges served from the cache *)
  groups_remerged : int;
  wall_seconds : float;
}

let stats_line (r : result) : string =
  Printf.sprintf "incremental: reanalyzed=%d reused=%d%s" r.reanalyzed
    r.reused
    (if r.fallback then " (fallback: full remerge)" else "")

(* ------------------------------------------------------------------ *)
(* The delta path                                                      *)
(* ------------------------------------------------------------------ *)

let group_magic = "PDT-INCR-GROUP v1"

let group_key (member_keys : string list) : string =
  Hashutil.strings (group_magic :: member_keys)

let chunk size xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

type plan_item = {
  p_source : string;
  p_key : string;
  p_reuse : bool;
  p_reason : string;
  p_prev : entry option;
}

let classify ~vfs ~(o : Build.options) (prev : (string, entry) Hashtbl.t)
    ~had_state source : plan_item =
  let key =
    Cache.key ~vfs ~options:(Build.options_fingerprint o source) source
  in
  let reanalyze reason =
    { p_source = source; p_key = key; p_reuse = false; p_reason = reason;
      p_prev = Hashtbl.find_opt prev source }
  in
  match Hashtbl.find_opt prev source with
  | None ->
      reanalyze (if had_state then "new unit" else "no incremental state")
  | Some e when e.e_key <> key -> reanalyze "dependency cone changed"
  | Some e when dep_hash ~vfs e.e_deps <> e.e_dep_hash ->
      (* belt and braces: the key's lexical closure should subsume every
         recorded read, but the recorded set is what the compile actually
         consumed, so it gets the final word *)
      reanalyze "recorded dependency changed"
  | Some e ->
      { p_source = source; p_key = key; p_reuse = true;
        p_reason = "fingerprint unchanged"; p_prev = Some e }

(* A group either splices its cached partial merge (members untouched) or
   re-merges from member unit results. *)
type group_state =
  | Ready of P.t
  | Need of Build.unit_result option array  (* filled by the scheduler *)

let delta_build ~(options : options) ~vfs (sources : string list) : result =
  let o = options.build in
  let dir =
    match o.Build.cache_dir with
    | Some d -> d
    | None -> invalid_arg "Incremental.build: cache_dir is required"
  in
  let t0 = Unix.gettimeofday () in
  let cache = Cache.create ~dir () in
  let state_path =
    match options.state_file with
    | Some p -> p
    | None -> Filename.concat dir "incremental.state"
  in
  let prev_entries = load_state state_path in
  let had_state = prev_entries <> [] in
  let prev = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace prev e.e_source e) prev_entries;
  let plan =
    Trace.timed ~cat:"incr" "incr.plan" @@ fun () ->
    List.map (classify ~vfs ~o prev ~had_state) sources
  in
  let groups = chunk (max 1 options.group_size) plan in
  (* probe the partial-merge cache for groups with no re-analyzed member;
     a transient read fault is a miss here — the delta path must degrade,
     not die *)
  let probe members =
    if not (List.for_all (fun p -> p.p_reuse) members) then
      Need (Array.make (List.length members) None)
    else
      let gkey = group_key (List.map (fun p -> p.p_key) members) in
      match
        (try Cache.load cache gkey with e when Fault.is_transient e -> None)
      with
      | Some pdb ->
          Trace.count ~cat:"incr" "incr.group_hit" 0;
          Ready pdb
      | None ->
          Trace.count ~cat:"incr" "incr.group_miss" 0;
          Need (Array.make (List.length members) None)
  in
  let states =
    Trace.timed ~cat:"incr" "incr.probe" @@ fun () -> List.map probe groups
  in
  (* every member of a dirty (or unprobed) group goes through
     Build.build_unit: it serves reusable units from the unit cache and
     compiles the rest, with the standard retry policy *)
  let work =
    List.concat
      (List.map2
         (fun members state ->
           match state with
           | Ready _ -> []
           | Need slots ->
               List.mapi (fun i p -> (p, slots, i)) members)
         groups states)
  in
  let task (p, (slots : Build.unit_result option array), i) =
    let u = Build.build_unit o (Some cache) ~vfs p.p_source in
    slots.(i) <- Some u;
    u
  in
  let results =
    Scheduler.parallel_map ~domains:o.Build.domains task
      (Array.of_list work)
  in
  Array.iteri
    (fun idx r ->
      let p, slots, i = List.nth work idx in
      match r with
      | Ok _ -> ()
      | Error e when Fault.is_transient e && o.Build.retries > 0 ->
          (* worker faulted before the task ran: one sequential redo *)
          Trace.count ~cat:"build" "build.retry" 0;
          ignore (task (p, slots, i))
      | Error e ->
          slots.(i) <-
            Some
              { Build.source = p.p_source;
                status = Build.Failed (Printexc.to_string e);
                pdb = None; seconds = 0.0; deps = [];
                cone_truncated = false })
    results;
  (* assemble group partials; freshly merged clean groups go back into the
     content-addressed cache for the next edit *)
  let group_pdbs =
    Trace.timed ~cat:"incr" "incr.group_merge" @@ fun () ->
    List.map2
      (fun members state ->
        match state with
        | Ready pdb -> Some pdb
        | Need slots ->
            let us = Array.to_list slots |> List.filter_map Fun.id in
            let survivors = List.filter_map (fun u -> u.Build.pdb) us in
            if survivors = [] then None
            else begin
              let pdb = Pdt_ductape.Ductape.merge survivors in
              let clean =
                List.length us = List.length members
                && List.for_all
                     (fun (u : Build.unit_result) ->
                       (not u.Build.cone_truncated)
                       &&
                       match u.Build.status with
                       | Build.Compiled | Build.Cached -> true
                       | _ -> false)
                     us
              in
              if clean then begin
                let gkey = group_key (List.map (fun p -> p.p_key) members) in
                try
                  Cache.store_serialized cache gkey
                    (Pdt_pdb.Pdb_write.to_string pdb)
                with e when Fault.is_transient e ->
                  Trace.count ~cat:"incr" "incr.group_store_failed" 0
              end;
              Some pdb
            end)
      groups states
    |> List.filter_map Fun.id
  in
  let merged =
    Trace.timed ~cat:"incr" "incr.merge" @@ fun () ->
    if o.Build.domains > 1 then
      Merge_par.merge ~domains:o.Build.domains group_pdbs
    else Pdt_ductape.Ductape.merge group_pdbs
  in
  (* per-unit report, state entries, and the reanalyzed/reused stats *)
  let units =
    List.concat
      (List.map2
         (fun members state ->
           match state with
           | Ready _ ->
               List.map
                 (fun p ->
                   { source = p.p_source; disposition = Reused;
                     reason = "group partial merge reused"; seconds = 0.0 })
                 members
           | Need slots ->
               List.mapi
                 (fun i p ->
                   match slots.(i) with
                   | None ->
                       { source = p.p_source;
                         disposition = Failed "not scheduled";
                         reason = p.p_reason; seconds = 0.0 }
                   | Some u ->
                       let disposition =
                         match u.Build.status with
                         | Build.Compiled -> Recompiled
                         | Build.Cached ->
                             if p.p_reuse then Reused else Loaded
                         | Build.Degraded m -> Degraded m
                         | Build.Failed m -> Failed m
                         | Build.Skipped -> Failed "skipped"
                       in
                       { source = p.p_source; disposition;
                         reason = p.p_reason; seconds = u.Build.seconds })
                 members)
         groups states)
  in
  let entries =
    List.concat
      (List.map2
         (fun members state ->
           match state with
           | Ready _ -> List.filter_map (fun p -> p.p_prev) members
           | Need slots ->
               List.mapi
                 (fun i p ->
                   match slots.(i) with
                   | Some (u : Build.unit_result) -> (
                       match u.Build.status with
                       | Build.Compiled when not u.Build.cone_truncated ->
                           Some
                             { e_source = p.p_source; e_key = p.p_key;
                               e_dep_hash = dep_hash ~vfs u.Build.deps;
                               e_deps = u.Build.deps }
                       | Build.Cached -> (
                           (* the compile didn't run, so nothing was
                              recorded: carry the previous entry forward,
                              or fall back to the lexical closure, which
                              subsumes every read the compile would do *)
                           match p.p_prev with
                           | Some e when e.e_key = p.p_key -> Some e
                           | _ ->
                               let deps =
                                 List.map fst
                                   (Cache.include_closure ~vfs p.p_source)
                               in
                               Some
                                 { e_source = p.p_source; e_key = p.p_key;
                                   e_dep_hash = dep_hash ~vfs deps;
                                   e_deps = deps })
                       | _ -> None)
                   | None -> None)
                 members
               |> List.filter_map Fun.id)
         groups states)
  in
  save_state state_path entries;
  let count f = List.length (List.filter f units) in
  let reanalyzed =
    count (fun u ->
        match u.disposition with
        | Recompiled | Degraded _ | Failed _ -> true
        | _ -> false)
  in
  let reused =
    count (fun u ->
        match u.disposition with Reused | Loaded -> true | _ -> false)
  in
  let groups_reused =
    List.length (List.filter (function Ready _ -> true | _ -> false) states)
  in
  Perf.record "incr.reanalyzed" reanalyzed;
  Perf.record "incr.reused" reused;
  { merged; units; reanalyzed; reused; fallback = false; groups_reused;
    groups_remerged = List.length states - groups_reused;
    wall_seconds = Unix.gettimeofday () -. t0 }

(* ------------------------------------------------------------------ *)
(* Entry point with full-remerge fallback                              *)
(* ------------------------------------------------------------------ *)

(* A plain Build.build presented as an incremental result: everything the
   unit cache served counts as reused, everything compiled as reanalyzed. *)
let full_build ~(options : options) ~vfs (sources : string list)
    ~(reason : string) : result =
  let t0 = Unix.gettimeofday () in
  let r = Build.build ~options:options.build ~vfs sources in
  let units =
    List.map
      (fun (u : Build.unit_result) ->
        let disposition =
          match u.Build.status with
          | Build.Compiled -> Recompiled
          | Build.Cached -> Loaded
          | Build.Degraded m -> Degraded m
          | Build.Failed m -> Failed m
          | Build.Skipped -> Failed "skipped"
        in
        { source = u.Build.source; disposition; reason;
          seconds = u.Build.seconds })
      r.Build.units
  in
  (* repair the state file so the next run can take the delta path *)
  (match options.build.Build.cache_dir with
   | None -> ()
   | Some dir ->
       let state_path =
         match options.state_file with
         | Some p -> p
         | None -> Filename.concat dir "incremental.state"
       in
       let entries =
         List.filter_map
           (fun (u : Build.unit_result) ->
             match u.Build.status with
             | Build.Compiled when not u.Build.cone_truncated ->
                 (try
                    Some
                      { e_source = u.Build.source;
                        e_key =
                          Cache.key ~vfs
                            ~options:
                              (Build.options_fingerprint options.build
                                 u.Build.source)
                            u.Build.source;
                        e_dep_hash = dep_hash ~vfs u.Build.deps;
                        e_deps = u.Build.deps }
                  with _ -> None)
             | _ -> None)
           r.Build.units
       in
       save_state state_path entries);
  let reused = r.Build.cached in
  let total = List.length r.Build.units in
  Perf.record "incr.reanalyzed" (total - reused);
  Perf.record "incr.reused" reused;
  { merged = r.Build.merged; units; reanalyzed = total - reused; reused;
    fallback = true; groups_reused = 0; groups_remerged = 0;
    wall_seconds = Unix.gettimeofday () -. t0 }

(** Incremental build: reuse everything whose dependency fingerprint is
    unchanged since the recorded state, re-analyze the rest, and splice
    the delta through memoized partial merges.  Byte-identical to
    {!Build.build} over the same sources.  Requires a cache directory;
    any failure of the delta path (including injected faults) falls back
    to a full build-and-remerge. *)
let build ?(options = default_options) ~vfs (sources : string list) : result =
  Trace.span ~cat:"incr" "incr.build" @@ fun () ->
  match options.build.Build.cache_dir with
  | None -> full_build ~options ~vfs sources ~reason:"cache disabled"
  | Some _ -> (
      try delta_build ~options ~vfs sources
      with e ->
        Trace.count ~cat:"incr" "incr.fallback" 0;
        if Trace.on () then
          Trace.instant ~cat:"incr"
            ~args:[ ("error", Trace.Str (Printexc.to_string e)) ]
            "incr.fallback";
        full_build ~options ~vfs sources
          ~reason:
            (Printf.sprintf "delta path failed (%s): full remerge"
               (Printexc.to_string e)))
