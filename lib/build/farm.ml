(** The process-supervised build farm behind [pdbbuild --farm N].

    {!Scheduler} runs workers as OCaml 5 Domains: cheap, but one unit that
    segfaults the runtime, wedges, or exhausts memory takes the whole
    build down.  The farm trades startup cost for {e crash isolation}: N
    [pdbworker] processes, each fork/exec'd with a {!Farm_proto} socketpair
    on stdin/stdout, each compiling one translation unit at a time against
    the shared {!Cache} directory.  The driver is a single-threaded
    [select] loop that owns all policy:

    - {e dispatch}: pending units go to idle workers in submission order;
      results land in per-index slots, so output order (and hence the
      merge) is deterministic regardless of completion order;
    - {e liveness}: a worker that sends no frame (result or heartbeat)
      within [liveness_timeout] is wedged → SIGKILL; a unit in flight
      longer than [unit_deadline] → SIGKILL.  Kills are indistinguishable
      from crashes downstream, which is the point: one recovery path;
    - {e crash-only recovery}: any worker death — exit, signal, torn or
      malformed frame — reaps the process, requeues its in-flight unit
      (up to the build's retry budget, then a clean [Failed]), and
      respawns the slot under exponential backoff with a global respawn
      budget.  A crash therefore yields a retried or cleanly-failed unit,
      never a hung build; half-written cache entries cannot happen by the
      cache's tmp+rename discipline, and debris temp files are swept by
      pid liveness before and after the run;
    - {e pool exhaustion}: when every slot is dead and the respawn budget
      is spent, remaining units fail with a diagnostic — degraded output
      over no output.

    The final slot sweep goes through {!Scheduler.reconcile}, the same
    lost-slot-becomes-Error policy the Domain pool uses: even a
    supervisor bug that loses track of a unit surfaces as that unit's
    [Error], never a silent drop.

    Perf counters: [farm.spawn], [farm.respawn], [farm.crash] (worker
    died on its own), [farm.kill] (driver killed it), [farm.dispatch],
    [farm.result], [farm.requeue], [cache.tmp_swept]. *)

open Pdt_util

type config = {
  workers : int;
  heartbeat_ms : int;        (** worker-side heartbeat period *)
  liveness_timeout : float;  (** s without any frame → wedged, SIGKILL *)
  unit_deadline : float;     (** s per unit in flight → SIGKILL *)
  max_respawns : int;        (** global respawn budget across the build *)
  backoff_initial : float;   (** first respawn delay, doubled per respawn
                                 of the same slot, capped at [backoff_max] *)
  backoff_max : float;
  worker_exe : string option;  (** override the [pdbworker] binary path *)
}

let default_config =
  { workers = 2;
    heartbeat_ms = 25;
    liveness_timeout = 2.0;
    unit_deadline = 120.0;
    max_respawns = 16;
    backoff_initial = 0.05;
    backoff_max = 1.0;
    worker_exe = None }

(** Locate the worker binary: [PDT_PDBWORKER] override, then next to the
    running executable, then the sibling [bin/] directory (the dune
    layout, where tests run from [_build/default/test]). *)
let find_worker () : string option =
  let candidates =
    (match Sys.getenv_opt "PDT_PDBWORKER" with Some p -> [ p ] | None -> [])
    @ (let d = Filename.dirname Sys.executable_name in
       [ Filename.concat d "pdbworker.exe";
         Filename.concat
           (Filename.concat (Filename.dirname d) "bin")
           "pdbworker.exe" ])
  in
  List.find_opt (fun p -> Sys.file_exists p && not (Sys.is_directory p)) candidates

(* ------------------------------------------------------------------ *)
(* Worker slots                                                        *)
(* ------------------------------------------------------------------ *)

type slot = {
  index : int;
  mutable pid : int;                    (* -1 = no process *)
  mutable fd : Unix.file_descr option;  (* driver end of the socketpair *)
  mutable asm : Farm_proto.Assembler.t;
  mutable ready : bool;                 (* Hello received *)
  mutable unit_id : int option;         (* in-flight unit index *)
  mutable dispatched_at : float;
  mutable last_seen : float;
  mutable respawns : int;               (* per-slot, drives backoff *)
  mutable respawn_at : float;           (* earliest next spawn; infinity =
                                           permanently retired *)
}

let close_slot_fd (w : slot) =
  (match w.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  w.fd <- None

(* Reap, blocking briefly: a SIGKILLed child is reapable almost
   immediately; don't let a pathological case hang the driver. *)
let reap_pid pid =
  if pid > 0 then begin
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec go () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> if Unix.gettimeofday () < deadline then (Unix.sleepf 0.002; go ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  end

let kill_slot (w : slot) =
  if w.pid > 0 then begin
    Perf.record "farm.kill" 0;
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap_pid w.pid
  end;
  close_slot_fd w;
  w.pid <- -1;
  w.ready <- false

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

exception Farm_unavailable of string
(** No usable worker binary; the caller (pdbbuild) falls back to the
    in-process Domain pool. *)

let unit_result_of_result ~source (r : Farm_proto.msg) : Build.unit_result =
  match r with
  | Farm_proto.Result
      { status = wire_status; message; pdb = wire_pdb; seconds; deps;
        cone_truncated; _ } ->
      let status =
        match wire_status with
        | Farm_proto.S_compiled -> Build.Compiled
        | Farm_proto.S_cached -> Build.Cached
        | Farm_proto.S_degraded -> Build.Degraded message
        | Farm_proto.S_failed -> Build.Failed message
      in
      let pdb =
        match wire_pdb with
        | None -> None
        | Some s -> (
            (* the worker serialized the PDB it just built; a parse
               failure here means the Result frame body was corrupted in
               transit — treat as a failed unit, not a crash *)
            try Some (Pdt_pdb.Pdb_io.of_string s) with _ -> None)
      in
      let status =
        match (status, pdb, wire_pdb) with
        | (Build.Compiled | Build.Cached | Build.Degraded _), None, Some _ ->
            Build.Failed "farm: undecodable PDB in result frame"
        | s, _, _ -> s
      in
      { Build.source; status; pdb; seconds; deps; cone_truncated }
  | _ -> invalid_arg "unit_result_of_result"

let backoff_delay (c : config) (respawns : int) : float =
  min c.backoff_max (c.backoff_initial *. (2.0 ** float_of_int (respawns - 1)))

(** Build [sources] on a farm of [config.workers] processes.  Drop-in for
    {!Build.build}: same result shape, same status semantics, so the
    pdbbuild summary/exit-code epilogue needs no farm-specific paths.
    Raises {!Farm_unavailable} if no worker binary can be found. *)
let build ?(config = default_config) ?(options = Build.default_options) ~vfs
    (sources : string list) : Build.result =
  let exe =
    match (config.worker_exe, find_worker ()) with
    | Some e, _ when Sys.file_exists e -> e
    | Some e, _ -> raise (Farm_unavailable ("no worker binary at " ^ e))
    | None, Some e -> e
    | None, None -> raise (Farm_unavailable "pdbworker.exe not found")
  in
  let t0 = Unix.gettimeofday () in
  (* a worker dying mid-write must not SIGPIPE the driver *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_sigpipe () =
    match prev_sigpipe with
    | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
    | None -> ()
  in
  Fun.protect ~finally:restore_sigpipe @@ fun () ->
  let cache = Option.map (fun dir -> Cache.create ~dir ()) options.Build.cache_dir in
  Option.iter (fun c -> ignore (Cache.sweep_stale_tmps c)) cache;
  let n_units = List.length sources in
  let n_workers = max 1 (min config.workers (max 1 n_units)) in
  let tasks = Array.of_list sources in
  let n = Array.length tasks in
  let results : (Build.unit_result, exn) result option array = Array.make n None in
  let attempts = Array.make n 0 in
  let pending : int Queue.t = Queue.create () in
  Array.iteri (fun i _ -> Queue.push i pending) tasks;
  let outstanding = ref n in
  let aborted = ref false in          (* fail_fast tripped *)
  let respawn_budget = ref config.max_respawns in
  let config_frame =
    Farm_proto.encode
      (Farm_proto.Config
         (Farm_proto.config_of_options options ~vfs
            ~heartbeat_ms:config.heartbeat_ms))
  in
  let slots =
    Array.init n_workers (fun index ->
        { index; pid = -1; fd = None; asm = Farm_proto.Assembler.create ();
          ready = false; unit_id = None; dispatched_at = 0.0;
          last_seen = 0.0; respawns = 0; respawn_at = 0.0 })
  in
  (* Fault schedules ride the environment into workers (Fault.arm_from_env).
     A respawned process restarts its occurrence counters at zero, so
     without correction every worker life replays the same schedule prefix
     — a mid-schedule kill would kill every successor at the same spot and
     no injected-kill run could ever recover.  Appending a distinct
     [skip=] offset per spawn makes each worker life sample a fresh window
     of the same seeded stream: deterministic per (seed, spawn serial),
     but respawns move past the fatal occurrence at any rate < 1. *)
  let spawn_serial = ref 0 in
  let env_for_spawn () : string array option =
    incr spawn_serial;
    match Sys.getenv_opt Fault.env_var with
    | None -> None
    | Some spec when String.trim spec = "" -> None
    | Some spec ->
        let augmented =
          Printf.sprintf "%s;skip=%d" spec ((!spawn_serial - 1) * 1009)
        in
        let prefix = Fault.env_var ^ "=" in
        let plen = String.length prefix in
        let replaced = ref false in
        let env =
          Array.map
            (fun kv ->
              if String.length kv >= plen && String.sub kv 0 plen = prefix
              then begin
                replaced := true;
                prefix ^ augmented
              end
              else kv)
            (Unix.environment ())
        in
        Some
          (if !replaced then env
           else Array.append env [| prefix ^ augmented |])
  in
  let record i (r : (Build.unit_result, exn) result) =
    if results.(i) = None then begin
      results.(i) <- Some r;
      decr outstanding
    end
  in
  (* send, treating a write failure as the worker having died: the crash
     handler picks the pieces up on the next loop turn via EOF *)
  let send (w : slot) (m : Farm_proto.msg) : bool =
    match w.fd with
    | None -> false
    | Some fd -> (
        try
          Farm_proto.write_frame fd (Farm_proto.encode m);
          true
        with Unix.Unix_error _ | Sys_error _ -> false)
  in
  let spawn (w : slot) =
    let parent_fd, child_fd =
      Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    Unix.clear_close_on_exec child_fd;
    let pid =
      try
        match env_for_spawn () with
        | Some env ->
            Unix.create_process_env exe [| exe |] env child_fd child_fd
              Unix.stderr
        | None -> Unix.create_process exe [| exe |] child_fd child_fd Unix.stderr
      with e ->
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        (try Unix.close child_fd with Unix.Unix_error _ -> ());
        raise e
    in
    (try Unix.close child_fd with Unix.Unix_error _ -> ());
    w.pid <- pid;
    w.fd <- Some parent_fd;
    w.asm <- Farm_proto.Assembler.create ();
    w.ready <- false;
    w.unit_id <- None;
    w.last_seen <- Unix.gettimeofday ();
    Perf.record "farm.spawn" 0;
    if Trace.on () then
      Trace.instant ~cat:"farm"
        ~args:[ ("slot", Trace.Int w.index); ("pid", Trace.Int pid) ]
        "farm.spawn";
    (* ship the Config; the worker's first act is to drain it, so the
       blocking write completes even when the table exceeds the socket
       buffer.  A write failure means the child is already dead — the
       EOF surfaces on the next select turn. *)
    match w.fd with
    | Some fd -> (
        try Farm_proto.write_frame fd config_frame
        with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  in
  (* worker [w] is gone (crash, kill, torn frame): requeue or fail its
     in-flight unit, then schedule the slot's respawn under backoff *)
  let handle_death (w : slot) ~(why : string) =
    (match w.unit_id with
    | Some i when results.(i) = None ->
        if attempts.(i) <= options.Build.retries && not !aborted then begin
          Perf.record "farm.requeue" 0;
          Queue.push i pending
        end
        else
          record i
            (Ok
               { Build.source = tasks.(i);
                 status =
                   Build.Failed
                     (Printf.sprintf
                        "farm: worker %s with unit in flight (attempt %d/%d)"
                        why attempts.(i) (options.Build.retries + 1));
                 pdb = None; seconds = 0.0; deps = [];
                 cone_truncated = false })
    | _ -> ());
    w.unit_id <- None;
    close_slot_fd w;
    if w.pid > 0 then begin
      (* harmless on an already-exited child; necessary after a read
         error from a still-live one *)
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap_pid w.pid
    end;
    w.pid <- -1;
    w.ready <- false;
    if !respawn_budget > 0 && not !aborted then begin
      decr respawn_budget;
      w.respawns <- w.respawns + 1;
      w.respawn_at <- Unix.gettimeofday () +. backoff_delay config w.respawns;
      Perf.record "farm.respawn" 0;
      if Trace.on () then
        Trace.instant ~cat:"farm"
          ~args:[ ("slot", Trace.Int w.index); ("why", Trace.Str why) ]
          "farm.respawn"
    end
    else w.respawn_at <- infinity
  in
  let dispatch () =
    Array.iter
      (fun w ->
        if
          w.ready && w.unit_id = None && w.fd <> None && not !aborted
          && not (Queue.is_empty pending)
        then begin
          let i = Queue.pop pending in
          if results.(i) <> None then ()
          else begin
            attempts.(i) <- attempts.(i) + 1;
            w.unit_id <- Some i;
            w.dispatched_at <- Unix.gettimeofday ();
            Perf.record "farm.dispatch" 0;
            if not (send w (Farm_proto.Unit { id = i; source = tasks.(i) }))
            then begin
              Perf.record "farm.crash" 0;
              handle_death w ~why:"died at dispatch"
            end
          end
        end)
      slots
  in
  let handle_msg (w : slot) (m : Farm_proto.msg) =
    w.last_seen <- Unix.gettimeofday ();
    match m with
    | Farm_proto.Hello { version; _ } ->
        if version <> Farm_proto.version then begin
          kill_slot w;
          w.respawn_at <- infinity (* a version skew never heals by respawn *)
        end
        else w.ready <- true
    | Farm_proto.Heartbeat _ -> ()
    | Farm_proto.Result { id = rid; _ } ->
        (match w.unit_id with
        | Some i when i = rid ->
            Perf.record "farm.result" 0;
            record i (Ok (unit_result_of_result ~source:tasks.(i) m));
            (match results.(i) with
            | Some (Ok { Build.status = Build.Failed _; _ })
              when options.Build.fail_fast ->
                aborted := true
            | _ -> ());
            w.unit_id <- None
        | _ ->
            (* a result for a unit this worker doesn't hold: protocol
               confusion — crash-only, kill and recover *)
            kill_slot w;
            handle_death w ~why:"sent stray result")
    | Farm_proto.Config _ | Farm_proto.Unit _ | Farm_proto.Quit ->
        kill_slot w;
        handle_death w ~why:"sent driver-only frame"
  in
  let chunk = Bytes.create 65536 in
  let drain (w : slot) =
    match w.fd with
    | None -> ()
    | Some fd -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          -> ()
        | exception Unix.Unix_error _ ->
            Perf.record "farm.crash" 0;
            handle_death w ~why:"read error"
        | 0 ->
            Perf.record "farm.crash" 0;
            handle_death w ~why:"crashed"
        | nread -> (
            Farm_proto.Assembler.feed w.asm chunk nread;
            try
              let rec drain_frames () =
                match Farm_proto.Assembler.next w.asm with
                | None -> ()
                | Some payload ->
                    handle_msg w (Farm_proto.decode payload);
                    if w.fd <> None then drain_frames ()
              in
              drain_frames ()
            with Farm_proto.Proto_error _ ->
              Perf.record "farm.crash" 0;
              kill_slot w;
              handle_death w ~why:"sent malformed frame"))
  in
  (* terminal sweep: resolve every unresolved slot with [status] *)
  let resolve_rest status =
    Queue.clear pending;
    Array.iteri
      (fun i r ->
        if r = None then
          record i
            (Ok
               { Build.source = tasks.(i); status; pdb = None;
                 seconds = 0.0; deps = []; cone_truncated = false }))
      results
  in
  Trace.span ~cat:"farm" ~args:[ ("workers", Trace.Int n_workers) ] "farm.build"
    (fun () ->
      while !outstanding > 0 do
        let in_flight = Array.exists (fun w -> w.unit_id <> None) slots in
        let live = Array.exists (fun w -> w.fd <> None) slots in
        let respawnable = Array.exists (fun w -> w.fd = None && w.respawn_at < infinity) slots in
        if !aborted && not in_flight then
          (* fail-fast tripped and the pipeline has drained: everything
             still unresolved was never scheduled *)
          resolve_rest Build.Skipped
        else if (not live) && not respawnable then
          (* pool exhausted: every slot dead, respawn budget spent *)
          resolve_rest
            (Build.Failed "farm: worker pool exhausted (respawn budget spent)")
        else begin
        let now = Unix.gettimeofday () in
        (* respawn due slots while there is queued work to give them *)
        Array.iter
          (fun w ->
            if
              w.fd = None && w.respawn_at <= now && not !aborted
              && not (Queue.is_empty pending)
            then spawn w)
          slots;
        dispatch ();
        (* deadline / liveness enforcement *)
        Array.iter
          (fun w ->
            if w.fd <> None then begin
              let wedged =
                now -. w.last_seen > config.liveness_timeout
              and overdue =
                match w.unit_id with
                | Some _ -> now -. w.dispatched_at > config.unit_deadline
                | None -> false
              in
              if wedged || overdue then begin
                if Trace.on () then
                  Trace.instant ~cat:"farm"
                    ~args:
                      [ ("slot", Trace.Int w.index);
                        ("why", Trace.Str (if overdue then "deadline" else "wedged")) ]
                    "farm.deadline_kill";
                kill_slot w;
                handle_death w
                  ~why:(if overdue then "exceeded unit deadline" else "wedged (no heartbeat)")
              end
            end)
          slots;
        let fds =
          Array.to_list slots
          |> List.filter_map (fun w -> w.fd)
        in
        if fds = [] then begin
          (* nothing live yet: wait out the shortest pending backoff *)
          let next_spawn =
            Array.fold_left
              (fun acc w -> if w.respawn_at < acc then w.respawn_at else acc)
              infinity slots
          in
          if next_spawn < infinity then
            Unix.sleepf (min 0.05 (max 0.001 (next_spawn -. now)))
        end
        else begin
          let timeout = min 0.05 (config.liveness_timeout /. 4.0) in
          match Unix.select fds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              Array.iter
                (fun w ->
                  match w.fd with
                  | Some fd when List.memq fd readable -> drain w
                  | _ -> ())
                slots
        end
        end
      done;
      (* shutdown: polite Quit, then the hammer *)
      Array.iter
        (fun w ->
          if w.fd <> None then begin
            ignore (send w Farm_proto.Quit);
            close_slot_fd w
          end;
          if w.pid > 0 then begin
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap_pid w.pid;
            w.pid <- -1
          end)
        slots);
  Option.iter (fun c -> ignore (Cache.sweep_stale_tmps c)) cache;
  (* the shared lost-slot policy: any slot the supervisor failed to
     resolve becomes a per-unit Error here, never a silent drop *)
  let reconciled = Scheduler.reconcile ~pool:"farm" results in
  let units =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok u -> u
           | Error e ->
               { Build.source = tasks.(i);
                 status = Build.Failed (Printexc.to_string e);
                 pdb = None; seconds = 0.0; deps = [];
                 cone_truncated = false })
         reconciled)
  in
  let survivors = List.filter_map (fun u -> u.Build.pdb) units in
  let merged =
    if n_workers > 1 then Merge_par.merge ~domains:n_workers survivors
    else Pdt_ductape.Ductape.merge survivors
  in
  let count p = List.length (List.filter p units) in
  { Build.merged;
    units;
    compiled = count (fun u -> u.Build.status = Build.Compiled);
    cached = count (fun u -> u.Build.status = Build.Cached);
    degraded =
      count (fun u ->
          match u.Build.status with Build.Degraded _ -> true | _ -> false);
    failed =
      count (fun u ->
          match u.Build.status with Build.Failed _ -> true | _ -> false);
    skipped = count (fun u -> u.Build.status = Build.Skipped);
    wall_seconds = Unix.gettimeofday () -. t0;
    cpu_seconds = List.fold_left (fun a u -> a +. u.Build.seconds) 0.0 units }
