(** Parallel k-way tree-reduction PDB merge.

    {!Pdt_ductape.Ductape.merge} is canonical — its output is a pure
    function of the deduplicated content, not of input order or grouping —
    so a big merge can be computed as a two-level reduction: the inputs
    split into [k] contiguous chunks that merge concurrently on the
    {!Scheduler} pool, and the [k] partial PDBs merge flat at the root.
    The final bytes match the flat sequential merge exactly; the tests in
    [test_build.ml] pin that identity across tree shapes, domain counts
    and input permutations.

    A k-way split beats a pairwise binary tree here for two reasons: the
    pool spawns its domains once instead of once per round, and each input
    item is canonicalized twice in total (once in its chunk, once at the
    root over the already-deduplicated partials) instead of [log2 n]
    times.  When template duplication across translation units is heavy —
    the paper's Table 2 scenario — the partials are close to the unique
    content, so the root merge is cheap and the chunk level parallelizes
    the bulk of the work.

    The identity relies on the inputs being mutually consistent, as PDBs
    of one project are under the one-definition rule: duplicate entities
    across inputs are either content-identical after id remapping or
    declaration/definition pairs.  Conflicting definitions of the same
    entity (an ODR violation) are resolved deterministically but possibly
    differently by different groupings.

    With one domain (or too few inputs to split) this degrades to the
    flat merge, which is also what {!Build.build} calls directly when not
    running parallel. *)

module P = Pdt_pdb.Pdb
module D = Pdt_ductape.Ductape

let merge ?domains (pdbs : P.t list) : P.t =
  let k =
    match domains with
    | Some d -> max 1 d
    | None -> Scheduler.default_domains ()
  in
  let n = List.length pdbs in
  if k <= 1 || n <= 3 then D.merge pdbs
  else begin
    let arr = Array.of_list pdbs in
    let k = min k (n / 2) in  (* at least two inputs per chunk *)
    let chunk i =
      (* contiguous slice [i*n/k, (i+1)*n/k) — covers all of [arr] *)
      let s = i * n / k and e = (i + 1) * n / k in
      Array.to_list (Array.sub arr s (e - s))
    in
    let merge_chunk ps =
      Pdt_util.Trace.span ~cat:"pdb" "pdb.merge_chunk" (fun () -> D.merge ps)
    in
    let partials =
      Scheduler.parallel_map ~domains:k merge_chunk (Array.init k chunk)
    in
    D.merge
      (Array.to_list partials
      |> List.mapi (fun i -> function
           | Ok p -> p
           | Error e when Pdt_util.Fault.is_transient e ->
               (* a flaky worker lost this chunk; the flat merge is
                  deterministic, so redoing it inline changes nothing *)
               Pdt_util.Perf.record "build.retry" 0;
               D.merge (chunk i)
           | Error e -> raise e))
  end
