(** The project build orchestrator behind [pdbbuild] and [pdtc --project].

    The paper's workflow is inherently multi-translation-unit: every
    compilation emits its own PDB and pdbmerge eliminates the duplicate
    template instantiations across them (Table 2).  This module runs that
    workflow at project granularity:

    - each translation unit (C++, Fortran 90 or Java, dispatched on the
      file extension exactly like [pdtc]) compiles to a PDB on a fixed
      pool of {!Scheduler} domains;
    - an incremental {!Cache} short-circuits units whose preprocessed
      input closure and options are unchanged;
    - per-unit failures are isolated: a unit that fails to compile is
      reported in the summary and the remaining PDBs still merge;
    - the merge is canonical — independent of input order {e and} grouping
      — so the parallel tree reduction ({!Merge_par}) used when running on
      several domains is byte-identical to the flat sequential
      {!Pdt_ductape.Ductape.merge}, and to a single-TU + pdbmerge build.

    The pipeline phases report wall time into {!Pdt_util.Perf}
    ([compile], [cache.load], [cache.store], plus [pdb.parse]/[pdb.write]/
    [pdb.merge] from the PDB layer); [pdbbuild --stats] prints them. *)

open Pdt_util

type language = Cpp | Fortran | Java

let language_of_source path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".f90" | ".f95" | ".f" -> Fortran
  | ".java" -> Java
  | _ -> Cpp

type options = {
  domains : int;             (** worker domains; 1 = sequential *)
  cache_dir : string option; (** [None] disables the incremental cache *)
  retries : int;             (** extra attempts per unit on transient
                                 failures (injected faults, [Sys_error]);
                                 deterministic diagnostics never retry *)
  fail_fast : bool;          (** stop scheduling new units after the first
                                 failure; unscheduled units are [Skipped].
                                 Also strict mode: recoverable front-end
                                 errors fail the unit instead of degrading *)
  sema : Pdt_sema.Sema.options;
  mapping : Pdt_analyzer.Analyzer.mapping;
  limits : Limits.budgets;   (** front-end resource budgets per unit *)
  pdb_format : Pdt_pdb.Pdb_io.format;
      (** container format for cache entries (and the driver's output
          file).  Deliberately absent from {!options_fingerprint}: both
          containers hold the same model and [Cache.load] sniffs per
          entry, so ASCII- and binary-mode builds share keys and reuse
          each other's entries *)
}

let default_options =
  { domains = 1;
    cache_dir = Some Cache.default_dir;
    retries = 2;
    fail_fast = false;
    sema = Pdt_sema.Sema.default_options;
    mapping = Pdt_analyzer.Analyzer.Location_based;
    limits = Limits.default_budgets;
    pdb_format = Pdt_pdb.Pdb_io.Ascii }

(* Everything that can change a unit's PDB besides its input content; part
   of the cache key.  Bump Cache.format_version instead when the PDB format
   itself changes.  The resource budgets belong here: a unit compiled under
   a generous include-depth budget and one compiled under a tight budget
   that truncates its cone produce different (Degraded) PDBs from identical
   inputs, so budgets must separate their cache keys. *)
let options_fingerprint (o : options) (source : string) =
  let l = o.limits in
  Printf.sprintf
    "lang=%s used=%b spec=%b mapping=%s \
     limits=%d,%d,%d,%d,%d,%d"
    (match language_of_source source with
     | Cpp -> "cpp" | Fortran -> "f90" | Java -> "java")
    o.sema.Pdt_sema.Sema.instantiate_used
    o.sema.Pdt_sema.Sema.map_specializations
    (match o.mapping with
     | Pdt_analyzer.Analyzer.Location_based -> "location"
     | Pdt_analyzer.Analyzer.Il_ids -> "ids")
    l.Limits.max_include_depth l.Limits.max_macro_depth l.Limits.max_tokens
    l.Limits.max_parse_depth l.Limits.max_instantiation_depth
    l.Limits.max_errors

type status =
  | Compiled            (** compiled this run (cache miss or no cache) *)
  | Cached              (** loaded from the incremental cache *)
  | Degraded of string  (** compiled with recoverable errors: the partial
                            PDB (marked [incomplete]) still merges, but the
                            unit is reported and never cached *)
  | Failed of string    (** diagnostics / exception text; unit excluded *)
  | Skipped             (** never scheduled: fail-fast stopped the build *)

type unit_result = {
  source : string;
  status : status;
  pdb : Pdt_pdb.Pdb.t option;  (** [None] iff [Failed] or [Skipped] *)
  seconds : float;
  deps : string list;
      (** normalized VFS paths read while compiling (source + actual
          include cone), sorted; [[]] when the unit was served from the
          cache or produced no PDB — the compile never ran, so nothing
          was observed *)
  cone_truncated : bool;
      (** the preprocessor hit the include-depth budget: [deps] misses the
          skipped subtree, so the unit must never be treated as reusable
          by dependency fingerprint *)
}

type result = {
  merged : Pdt_pdb.Pdb.t;      (** merge of every successful unit *)
  units : unit_result list;    (** in input order, not completion order *)
  compiled : int;
  cached : int;
  degraded : int;              (** partial PDBs merged despite errors *)
  failed : int;
  skipped : int;               (** only nonzero under [fail_fast] *)
  wall_seconds : float;
  cpu_seconds : float;         (** sum of per-unit times across workers *)
}

exception Unit_error of string
(** A translation unit's front end reported errors. *)

(* What one fresh compile produced: the PDB, the degradation report
   ([Some diags_text] when the C++ front end recovered from errors and the
   PDB is partial — keep-going mode only; under [fail_fast] recoverable
   errors raise [Unit_error]), the recorded dependency set and whether the
   include cone was truncated by the depth budget. *)
type compiled = {
  c_pdb : Pdt_pdb.Pdb.t;
  c_degraded : string option;
  c_deps : string list;
  c_truncated : bool;
}

(* Compile one unit against a private VFS copy (domains must not share the
   mutable Hashtbl inside Vfs.t) and run the IL Analyzer.  A read recorder
   on the private copy captures the unit's true dependency set — every
   file the preprocessor actually opened — for incremental rebuilds. *)
let compile_unit (o : options) ~vfs source : compiled =
  let vfs = Vfs.copy vfs in
  let seen = Hashtbl.create 16 in
  let reads = ref [] in
  Vfs.set_recorder vfs
    (Some
       (fun path ->
         if not (Hashtbl.mem seen path) then begin
           Hashtbl.replace seen path ();
           reads := path :: !reads
         end));
  let deps () = List.sort compare !reads in
  match language_of_source source with
  | Fortran | Java -> (
      match Vfs.read_raw vfs source with
      | None -> raise (Unit_error (Printf.sprintf "%s: no such file" source))
      | Some src ->
          let diags = Diag.create () in
          let prog =
            match language_of_source source with
            | Fortran -> Pdt_f90.F90_sema.compile_string ~file:source ~diags src
            | _ -> Pdt_java.Java_sema.compile_string ~file:source ~diags src
          in
          if Diag.has_errors diags then raise (Unit_error (Diag.to_string diags));
          { c_pdb = Pdt_analyzer.Analyzer.run prog; c_degraded = None;
            c_deps = deps (); c_truncated = false })
  | Cpp ->
      let limits = Limits.create ~budgets:o.limits () in
      let c = Pdt.compile ~opts:o.sema ~limits ~vfs source in
      if o.fail_fast && Diag.has_errors c.Pdt.diags then
        raise (Unit_error (Diag.to_string c.Pdt.diags));
      let aopts =
        { Pdt_analyzer.Analyzer.default_options with mapping = o.mapping }
      in
      let pdb = Pdt_analyzer.Analyzer.run ~opts:aopts c.Pdt.program in
      let truncated = c.Pdt.pp.Pdt_pp.Preproc.include_depth_exceeded in
      if Diag.has_errors c.Pdt.diags then begin
        pdb.Pdt_pdb.Pdb.incomplete <- true;
        pdb.Pdt_pdb.Pdb.diag_count <- Diag.error_count c.Pdt.diags;
        { c_pdb = pdb; c_degraded = Some (Diag.to_string c.Pdt.diags);
          c_deps = deps (); c_truncated = truncated }
      end
      else
        { c_pdb = pdb; c_degraded = None; c_deps = deps ();
          c_truncated = truncated }

(* One scheduler task: cache lookup, else compile and fill the cache.
   Never raises — failure is data here, not control flow.

   The retry policy lives here: a transient failure (an injected fault or
   a [Sys_error] — vanished file, flaky I/O) gets up to [o.retries] extra
   attempts, each counted under the [build.retry] Perf counter; a
   deterministic front-end diagnostic fails fast, because re-running the
   same compile would only reproduce it. *)
let build_unit (o : options) (cache : Cache.t option) ~vfs source : unit_result =
  let run () =
  let t0 = Unix.gettimeofday () in
  let finish ?(deps = []) ?(cone_truncated = false) status pdb =
    { source; status; pdb; seconds = Unix.gettimeofday () -. t0;
      deps; cone_truncated }
  in
  (* a failed store never sinks the unit — the PDB is in hand and the next
     build simply misses; count the loss so --stats surfaces it *)
  let store_entry c k body =
    try Trace.timed ~cat:"cache" "cache.store" (fun () -> Cache.store_serialized c k body)
    with e when Fault.is_transient e -> Trace.count ~cat:"cache" "cache.store_failed" 0
  in
  let attempt () =
    let key =
      Option.map
        (fun _ -> Cache.key ~vfs ~options:(options_fingerprint o source) source)
        cache
    in
    match (cache, key) with
    | Some c, Some k -> (
        match Trace.timed ~cat:"cache" "cache.load" (fun () -> Cache.load c k) with
        | Some pdb ->
            Trace.count ~cat:"cache" "cache.hit" 0;
            finish Cached (Some pdb)
        | None -> (
            Trace.count ~cat:"cache" "cache.miss" 0;
            match Trace.timed ~cat:"build" "compile" (fun () -> compile_unit o ~vfs source) with
            | { c_pdb = pdb; c_degraded = None; c_deps; c_truncated } ->
                (* serialize once; the entry body reuses the bytes.  A
                   truncated-cone unit is never stored: its key misses the
                   skipped include subtree, so a later edit to that subtree
                   could not invalidate the entry *)
                if not c_truncated then begin
                  let body = Pdt_pdb.Pdb_io.to_string o.pdb_format pdb in
                  store_entry c k body
                end;
                finish ~deps:c_deps ~cone_truncated:c_truncated Compiled
                  (Some pdb)
            | { c_pdb = pdb; c_degraded = Some msg; c_deps; c_truncated } ->
                (* a partial PDB never enters the cache: fixing the source
                   must recompile, not replay the degraded artifact *)
                finish ~deps:c_deps ~cone_truncated:c_truncated
                  (Degraded msg) (Some pdb)))
    | _ -> (
        match Trace.timed ~cat:"build" "compile" (fun () -> compile_unit o ~vfs source) with
        | { c_pdb = pdb; c_degraded = None; c_deps; c_truncated } ->
            finish ~deps:c_deps ~cone_truncated:c_truncated Compiled (Some pdb)
        | { c_pdb = pdb; c_degraded = Some msg; c_deps; c_truncated } ->
            finish ~deps:c_deps ~cone_truncated:c_truncated (Degraded msg)
              (Some pdb))
  in
  let rec go attempts_left =
    try attempt () with
    | Unit_error msg -> finish (Failed msg) None
    | Diag.Error d -> finish (Failed (Fmt.str "%a" Diag.pp_diagnostic d)) None
    | e when Fault.is_transient e && attempts_left > 0 ->
        Trace.count ~cat:"build" "build.retry" 0;
        go (attempts_left - 1)
    | e when Fault.is_transient e ->
        finish
          (Failed
             (Printf.sprintf "transient failure persisted after %d attempts: %s"
                (max 0 o.retries + 1) (Printexc.to_string e)))
          None
    | e -> finish (Failed (Printexc.to_string e)) None
  in
  go (max 0 o.retries)
  in
  if Trace.on () then
    Trace.span ~cat:"build" ~args:[ ("unit", Trace.Str source) ] "build.unit" run
  else run ()

(** Build a project: compile every source to a PDB (in parallel, through
    the cache) and merge the survivors.  Sources are deduplicated nowhere —
    the caller's list is the build plan. *)
let build ?(options = default_options) ~vfs (sources : string list) : result =
  let t0 = Unix.gettimeofday () in
  let cache = Option.map (fun dir -> Cache.create ~dir ()) options.cache_dir in
  let tasks = Array.of_list sources in
  let aborted = Atomic.make false in
  let task source =
    let u = build_unit options cache ~vfs source in
    (match u.status with
     | Failed _ when options.fail_fast -> Atomic.set aborted true
     | _ -> ());
    u
  in
  let results =
    Scheduler.parallel_map ~domains:options.domains
      ~should_stop:(fun () -> Atomic.get aborted)
      task tasks
  in
  let units =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok u -> u
           | Error Scheduler.Cancelled ->
               { source = tasks.(i); status = Skipped; pdb = None;
                 seconds = 0.0; deps = []; cone_truncated = false }
           | Error e when Fault.is_transient e && options.retries > 0 ->
               (* the worker faulted before the task ran (flaky-worker
                  injection, lost job): one sequential redo, which brings
                  build_unit's own retry budget with it *)
               Trace.count ~cat:"build" "build.retry" 0;
               task tasks.(i)
           | Error e ->
               { source = tasks.(i); status = Failed (Printexc.to_string e);
                 pdb = None; seconds = 0.0; deps = [];
                 cone_truncated = false })
         results)
  in
  let survivors = List.filter_map (fun u -> u.pdb) units in
  let merged =
    (* the tree merge only pays off when pair merges actually run
       concurrently; with one domain the flat merge does less work *)
    if options.domains > 1 then Merge_par.merge ~domains:options.domains survivors
    else Pdt_ductape.Ductape.merge survivors
  in
  let count p = List.length (List.filter p units) in
  { merged;
    units;
    compiled = count (fun u -> u.status = Compiled);
    cached = count (fun u -> u.status = Cached);
    degraded = count (fun u -> match u.status with Degraded _ -> true | _ -> false);
    failed = count (fun u -> match u.status with Failed _ -> true | _ -> false);
    skipped = count (fun u -> u.status = Skipped);
    wall_seconds = Unix.gettimeofday () -. t0;
    cpu_seconds = List.fold_left (fun a u -> a +. u.seconds) 0.0 units }

(** The one-line build report: [N compiled, M cached, K failed, wall time,
    speedup] — speedup is summed per-unit time over wall time, i.e. the
    effective parallelism (1.0x when sequential and cold).  Skipped units
    (fail-fast) are reported only when present. *)
let summary (r : result) : string =
  Printf.sprintf "%d compiled, %d cached, %d failed%s%s | %.3fs wall, %.3fs cpu, %.2fx speedup"
    r.compiled r.cached r.failed
    (if r.degraded > 0 then Printf.sprintf ", %d degraded" r.degraded else "")
    (if r.skipped > 0 then Printf.sprintf ", %d skipped" r.skipped else "")
    r.wall_seconds r.cpu_seconds
    (if r.wall_seconds > 0.0 then r.cpu_seconds /. r.wall_seconds else 1.0)

(** Failure details for the units that failed, in input order. *)
let failures (r : result) : (string * string) list =
  List.filter_map
    (fun u -> match u.status with Failed m -> Some (u.source, m) | _ -> None)
    r.units

(** Diagnostics for the units that compiled degraded, in input order. *)
let degraded_units (r : result) : (string * string) list =
  List.filter_map
    (fun u -> match u.status with Degraded m -> Some (u.source, m) | _ -> None)
    r.units
