(** A fixed-size pool of OCaml 5 domains draining a shared work queue.

    The project build compiles translation units on [domains] workers; the
    queue is guarded by a [Mutex.t]/[Condition.t] pair (no domainslib
    dependency).  Results land in per-index slots so callers see them in
    submission order, never completion order — determinism downstream
    (merge order, summary order) does not depend on scheduling.

    Robustness: an exception escaping the task function is captured as
    that slot's [Error], a worker domain dying outside the task (the
    ["scheduler.worker"] fault-injection site models this) marks only its
    own slot, and a caller-supplied [should_stop] predicate lets the
    build's fail-fast mode drain the remaining queue as {!Cancelled}
    slots instead of running them. *)

open Pdt_util

exception Cancelled
(** The slot's job was never run: [should_stop] turned true first. *)

exception Worker_lost of string
(** A worker (domain or farm process) died holding this slot's job and no
    crash exception could be attributed to it.  The payload says which
    pool lost the slot. *)

(** The one lost-slot policy, shared by the in-process Domain pool below
    and the multi-process {!Farm}: a slot left [None] by a dead worker
    becomes [Error] — attributed to [witness] (the first exception that
    escaped a worker's loop) when there is one, [Worker_lost] otherwise —
    and is {e never} silently dropped.  Conversely a [witness] with no
    missing slot is attributable to no job at all: surfacing it per-slot
    would mislabel a finished job, so it re-raises after the join barrier
    — for the Domain pool a worker death outside a task is a scheduler or
    runtime bug, never a normal outcome. *)
let reconcile ?(witness : exn option) ~(pool : string)
    (results : ('a, exn) result option array) : ('a, exn) result array =
  let lost = ref false in
  let out =
    Array.map
      (function
        | Some r -> r
        | None ->
            lost := true;
            Error
              (match witness with
               | Some e -> e
               | None -> Worker_lost (pool ^ ": lost job")))
      results
  in
  (match witness with
   | Some e when not !lost -> raise e
   | _ -> ());
  out

type 'a queue = {
  jobs : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let queue_create () =
  { jobs = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); closed = false }

let queue_push q x =
  Mutex.lock q.mutex;
  Queue.push x q.jobs;
  Condition.signal q.nonempty;
  Mutex.unlock q.mutex

(** No further pushes; workers blocked on an empty queue drain and exit. *)
let queue_close q =
  Mutex.lock q.mutex;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.mutex

(** Blocking pop; [None] once the queue is closed and drained. *)
let queue_pop q =
  Mutex.lock q.mutex;
  let rec take () =
    match Queue.take_opt q.jobs with
    | Some x -> Some x
    | None ->
        if q.closed then None
        else begin
          Condition.wait q.nonempty q.mutex;
          take ()
        end
  in
  let r = take () in
  Mutex.unlock q.mutex;
  r

(** Default worker count: leave one core for the orchestrating domain, and
    don't oversubscribe small containers. *)
let default_domains () =
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

(** [parallel_map ~domains f items] applies [f] to every element on a pool
    of [domains] workers.  Slot [i] of the result corresponds to item [i];
    an exception escaping [f] is captured as [Error] for that slot only.
    [domains <= 1] (or a single item) degrades to a plain sequential map,
    which keeps the zero-parallelism path trivially deterministic.
    [should_stop] is polled before each job: once it turns true, jobs not
    yet started resolve to [Error Cancelled] (jobs already running finish
    normally — tasks are never killed mid-flight). *)
let parallel_map ?domains ?(should_stop = fun () -> false) (f : 'a -> 'b)
    (items : 'a array) : ('b, exn) result array =
  let n = Array.length items in
  let domains =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min (default_domains ()) n)
  in
  let run1 x =
    if should_stop () then Error Cancelled
    else
      try
        Fault.check "scheduler.worker";
        Ok (f x)
      with e -> Error e
  in
  if n = 0 then [||]
  else if domains <= 1 then Array.map run1 items
  else begin
    let results = Array.make n None in
    let q = queue_create () in
    Array.iteri (fun i _ -> queue_push q i) items;
    queue_close q;
    (* first exception to escape a worker's loop (i.e. outside run1's
       per-task capture) or a join.  It must not vanish: the jobs the dead
       worker had popped surface below as that exception instead of an
       anonymous "lost job", and if no slot is missing it re-raises after
       the join barrier — a worker death is a bug in the scheduler or the
       runtime, never a normal outcome. *)
    let crashed : exn option Atomic.t = Atomic.make None in
    let note_crash e = ignore (Atomic.compare_and_set crashed None (Some e)) in
    let worker () =
      let rec loop () =
        match Trace.span ~cat:"sched" "sched.queue_wait" (fun () -> queue_pop q)
        with
        | None -> ()
        | Some i ->
            results.(i) <- Some (run1 items.(i));
            loop ()
      in
      (* a dying worker must not take the whole pool down: record the
         exception and exit; jobs still queued drain on its siblings *)
      try loop () with e -> note_crash e
    in
    let ds = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter (fun d -> try Domain.join d with e -> note_crash e) ds;
    reconcile ?witness:(Atomic.get crashed) ~pool:"scheduler" results
  end
