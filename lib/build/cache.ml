(** The incremental PDB cache.

    A cache entry maps a content hash of one translation unit's inputs to
    its serialized PDB under [.pdt-cache/].  The key covers everything that
    can change the PDB:

    - the source path and its contents,
    - the contents of every file in the (lexically scanned) include closure,
    - the compile-option fingerprint the driver passes in,
    - the cache format version.

    The closure scan over-approximates: it follows every [#include] it can
    resolve, including ones inside inactive [#if] regions, so an edit to a
    conditionally included header conservatively invalidates the entry.

    Entries are self-describing — the first line is a magic header carrying
    the format version and the key — so [load] can reject stale-version and
    misfiled entries explicitly, and any parse failure of the body (a
    truncated or corrupt file) is a cache miss, never a crash.  Writes go
    through a per-domain temp file and [Sys.rename] so concurrent workers
    never expose a half-written entry. *)

open Pdt_util

let format_version = 1

let magic = Printf.sprintf "PDT-CACHE v%d" format_version

type t = { dir : string }

let default_dir = ".pdt-cache"

let create ?(dir = default_dir) () = { dir }

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* Lexical include scan: finds  #include "x"  and  #include <x>  at the
   start of a line (after whitespace), the only forms the preprocessor
   accepts.  Macro-computed includes don't exist in this front end. *)
let scan_includes (src : string) : (bool * string) list =
  let acc = ref [] in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let n = String.length line in
         let i = ref 0 in
         while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
         if !i < n && line.[!i] = '#' then begin
           incr i;
           while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
           let kw = "include" in
           let k = String.length kw in
           if !i + k <= n && String.sub line !i k = kw then begin
             i := !i + k;
             while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
             if !i < n then
               match line.[!i] with
               | '"' -> (
                   match String.index_from_opt line (!i + 1) '"' with
                   | Some j ->
                       acc := (false, String.sub line (!i + 1) (j - !i - 1)) :: !acc
                   | None -> ())
               | '<' -> (
                   match String.index_from_opt line (!i + 1) '>' with
                   | Some j ->
                       acc := (true, String.sub line (!i + 1) (j - !i - 1)) :: !acc
                   | None -> ())
               | _ -> ()
           end
         end);
  List.rev !acc

(** The include closure of [source]: [(path, contents)] in DFS first-visit
    order, the source itself first.  Unresolvable includes are skipped (the
    compile proper will diagnose them; for the key they simply contribute
    nothing, and creating the missing header later changes the closure and
    hence the key). *)
let include_closure ~vfs (source : string) : (string * string) list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit path =
    let path = Vfs.normalize path in
    if not (Hashtbl.mem seen path) then begin
      Hashtbl.replace seen path ();
      match Vfs.read_raw vfs path with
      | None -> ()
      | Some contents ->
          out := (path, contents) :: !out;
          List.iter
            (fun (system, name) ->
              match Vfs.resolve_include vfs ~from:path ~system name with
              | Some p -> visit p
              | None -> ())
            (scan_includes contents)
    end
  in
  visit source;
  List.rev !out

(** Cache key for one translation unit.  [options] is the driver's
    compile-option fingerprint (instantiation mode, mapping, language). *)
let key ~vfs ~(options : string) (source : string) : string =
  let closure = include_closure ~vfs source in
  Hashutil.strings
    (magic :: options :: List.concat_map (fun (p, c) -> [ p; c ]) closure)

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

let entry_path t key = Filename.concat t.dir (key ^ ".pdb")

let header key = Printf.sprintf "%s key=%s" magic key

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

(** Look a key up.  [None] on: no entry, version mismatch, key mismatch
    (misfiled entry), or a body that fails to parse as a PDB. *)
let load t key : Pdt_pdb.Pdb.t option =
  match read_file (entry_path t key) with
  | None -> None
  | Some content -> (
      match String.index_opt content '\n' with
      | None -> None
      | Some i ->
          let hdr = String.sub content 0 i in
          if hdr <> header key then None
          else
            let body = String.sub content (i + 1) (String.length content - i - 1) in
            (try Some (Pdt_pdb.Pdb_parse.of_string body) with _ -> None))

let mkdir_p dirname =
  if not (Sys.file_exists dirname) then begin
    let parent = Filename.dirname dirname in
    if parent <> dirname && not (Sys.file_exists parent) then begin
      try Sys.mkdir parent 0o755 with Sys_error _ -> ()
    end;
    try Sys.mkdir dirname 0o755 with Sys_error _ -> ()
  end

(** Store an already-serialized PDB body.  Callers that hold the bytes
    anyway (the build driver serializes each unit's PDB exactly once and
    reuses the string for the entry and its digest) avoid re-serializing. *)
let store_serialized t key (body : string) : unit =
  mkdir_p t.dir;
  let final = entry_path t key in
  let tmp =
    Printf.sprintf "%s.tmp.%d" final (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  output_string oc (header key);
  output_char oc '\n';
  output_string oc body;
  close_out oc;
  Sys.rename tmp final

let store t key (pdb : Pdt_pdb.Pdb.t) : unit =
  store_serialized t key (Pdt_pdb.Pdb_write.to_string pdb)
