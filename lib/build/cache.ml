(** The incremental PDB cache.

    A cache entry maps a content hash of one translation unit's inputs to
    its serialized PDB under [.pdt-cache/].  The key covers everything that
    can change the PDB:

    - the source path and its contents,
    - the contents of every file in the (lexically scanned) include closure,
    - the compile-option fingerprint the driver passes in,
    - the cache format version.

    The closure scan over-approximates: it follows every [#include] it can
    resolve, including ones inside inactive [#if] regions, so an edit to a
    conditionally included header conservatively invalidates the entry.

    Entries are self-describing — the first line is a magic header carrying
    the format version, the key, and an MD5 digest of the body — so [load]
    verifies every byte it is about to trust: a stale version, a misfiled
    key, a truncated or bit-flipped body all fail the single header/digest
    comparison.  The cache is {e self-healing}: an entry that fails
    verification is quarantined (moved to [quarantine/] inside the cache
    dir, counted under the [cache.corrupt] Perf counter) rather than
    silently ignored, so corrupt files cannot be re-probed on every build
    and an operator can inspect what went bad; the unit then recompiles
    and the fresh store replaces the entry.  Writes go through a
    per-process, per-domain temp file and [Sys.rename] so concurrent
    workers and concurrent [pdbbuild] processes never expose a
    half-written entry, and the temp file is removed if the write dies.

    {b Cross-process sharing} (format v4).  One cache directory is shared
    by concurrent builder processes — farm workers, parallel [pdbbuild]
    invocations, a live [pdbd --project] — so the layout and the
    destructive operations are built for contention:

    - entries live in 256 {e shards}, [objects/<hh>/<key>.pdb] with [hh]
      the first two hex digits of the key, so no single directory grows
      unboundedly and directory-level contention spreads out;
    - {e quarantine is advisory-locked and re-verified}: before moving an
      entry aside the mover takes the shard's [fcntl] lock
      ([locks/<hh>.lock]) and re-checks that the bytes at the live path
      are still bad.  A concurrent writer replacing the entry between a
      reader's failed verification and its quarantine attempt therefore
      never loses a fresh entry to a stale verdict — zero quarantine
      false-positives by construction;
    - {e stale temp files are swept, not trusted}: a worker process
      SIGKILLed mid-store leaves its [*.tmp.<pid>.<domain>] file behind
      (crash-only workers run no cleanup handlers).  {!sweep_stale_tmps}
      removes temp files whose writing process is dead; the farm driver
      runs it before and after every build.

    Fault-injection sites ({!Pdt_util.Fault}): ["cache.read"] (transient
    load I/O error), ["cache.load.corrupt"] (entry treated as bit-rotten),
    ["cache.write.crash"] (writer dies mid-write; temp file must not
    leak), ["cache.write.torn"] (a truncated entry reaches the final
    path; [load] must quarantine it). *)

open Pdt_util

(* v4: sharded objects/<hh>/ layout (older flat-layout entries are simply
   never probed; the first build over an old directory recompiles and
   repopulates, which is the ordinary cold-cache path) *)
let format_version = 4

let magic = Printf.sprintf "PDT-CACHE v%d" format_version

type t = { dir : string }

let default_dir = ".pdt-cache"

let create ?(dir = default_dir) () = { dir }

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* Lexical include scan: finds  #include "x"  and  #include <x>  at the
   start of a line (after whitespace), the only forms the preprocessor
   accepts.  Macro-computed includes don't exist in this front end. *)
let scan_includes (src : string) : (bool * string) list =
  let acc = ref [] in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let n = String.length line in
         let i = ref 0 in
         while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
         if !i < n && line.[!i] = '#' then begin
           incr i;
           while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
           let kw = "include" in
           let k = String.length kw in
           if !i + k <= n && String.sub line !i k = kw then begin
             i := !i + k;
             while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
             if !i < n then
               match line.[!i] with
               | '"' -> (
                   match String.index_from_opt line (!i + 1) '"' with
                   | Some j ->
                       acc := (false, String.sub line (!i + 1) (j - !i - 1)) :: !acc
                   | None -> ())
               | '<' -> (
                   match String.index_from_opt line (!i + 1) '>' with
                   | Some j ->
                       acc := (true, String.sub line (!i + 1) (j - !i - 1)) :: !acc
                   | None -> ())
               | _ -> ()
           end
         end);
  List.rev !acc

(** The include closure of [source]: [(path, contents)] in DFS first-visit
    order, the source itself first.  Unresolvable includes are skipped (the
    compile proper will diagnose them; for the key they simply contribute
    nothing, and creating the missing header later changes the closure and
    hence the key). *)
let include_closure ~vfs (source : string) : (string * string) list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit path =
    let path = Vfs.normalize path in
    if not (Hashtbl.mem seen path) then begin
      Hashtbl.replace seen path ();
      match Vfs.read_raw vfs path with
      | None -> ()
      | Some contents ->
          out := (path, contents) :: !out;
          List.iter
            (fun (system, name) ->
              match Vfs.resolve_include vfs ~from:path ~system name with
              | Some p -> visit p
              | None -> ())
            (scan_includes contents)
    end
  in
  visit source;
  List.rev !out

(* Whitespace that provably cannot change a PDB: trailing spaces/tabs on a
   line (tokens and their columns are untouched — nothing follows them) and
   blank lines at end of file (no tokens follow).  Normalizing them out of
   the key lets a pure-whitespace edit keep its cache entry and lets the
   incremental driver report the unit as reused.  The one subtlety is line
   splicing: if stripping would leave the line ending in a backslash, the
   original line is kept — a splice must never appear (or disappear) under
   normalization.  Interior blank lines and leading whitespace stay: they
   shift line/column numbers, which PDB locations record. *)
let normalize_for_key (src : string) : string =
  let strip line =
    let n = String.length line in
    let i = ref n in
    while !i > 0 && (line.[!i - 1] = ' ' || line.[!i - 1] = '\t') do decr i done;
    if !i = n then line
    else
      let stripped = String.sub line 0 !i in
      if !i > 0 && line.[!i - 1] = '\\' then line else stripped
  in
  let lines = List.map strip (String.split_on_char '\n' src) in
  let rec drop_trailing_blanks = function
    | "" :: rest -> drop_trailing_blanks rest
    | kept -> kept
  in
  String.concat "\n" (List.rev (drop_trailing_blanks (List.rev lines)))

(** Cache key for one translation unit.  [options] is the driver's
    compile-option fingerprint (instantiation mode, mapping, language,
    resource budgets).  File contents enter the hash through
    {!normalize_for_key}, so edits the PDB cannot observe (trailing
    whitespace, trailing blank lines) keep the key stable. *)
let key ~vfs ~(options : string) (source : string) : string =
  let closure = include_closure ~vfs source in
  Hashutil.strings
    (magic :: options
     :: List.concat_map (fun (p, c) -> [ p; normalize_for_key c ]) closure)

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dirname =
  if dirname <> "" && not (Sys.file_exists dirname) then begin
    let parent = Filename.dirname dirname in
    if parent <> dirname then mkdir_p parent;
    try Sys.mkdir dirname 0o755 with Sys_error _ -> ()
  end

(* Sharded layout: objects/<hh>/<key>.pdb, hh = first two hex digits of
   the (MD5-hex) key.  256 shards bound directory size and give the
   advisory locks below a natural granularity. *)
let objects_dir t = Filename.concat t.dir "objects"

let shard_of_key key = if String.length key >= 2 then String.sub key 0 2 else "00"

let entry_path t key =
  Filename.concat
    (Filename.concat (objects_dir t) (shard_of_key key))
    (key ^ ".pdb")

let locks_dir t = Filename.concat t.dir "locks"

(* Run [f] holding the shard's advisory fcntl lock.  The lock guards the
   destructive move in {!quarantine_if} against concurrent processes; it
   is strictly advisory and best-effort — a filesystem without lock
   support degrades to unlocked operation, which only widens a window the
   tmp+rename write discipline already keeps harmless.  Plain reads and
   writes never take it (lock-free fast path). *)
let with_shard_lock t key (f : unit -> 'a) : 'a =
  mkdir_p (locks_dir t);
  match
    Unix.openfile
      (Filename.concat (locks_dir t) (shard_of_key key ^ ".lock"))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
          f ())

(* The header binds version, key and body together: one string comparison
   on load rejects stale versions, misfiled entries and corrupt bodies
   alike (any body damage changes the digest). *)
let header key digest = Printf.sprintf "%s key=%s digest=%s" magic key digest

(* Structural verification of a whole entry file: header line matches the
   key and the body digest.  No fault sites here — this is also the
   re-judgement that runs under the shard lock, where an injected verdict
   would fabricate exactly the false positive the lock exists to prevent. *)
let verify_content key content : string option =
  match String.index_opt content '\n' with
  | None -> None
  | Some i ->
      let body = String.sub content (i + 1) (String.length content - i - 1) in
      if String.sub content 0 i = header key (Hashutil.string body) then
        Some body
      else None

let read_file path =
  Fault.check "cache.read";
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with End_of_file | Sys_error _ -> None)

let quarantine_dir t = Filename.concat t.dir "quarantine"

(* Move a bad entry aside — but only if the bytes now at the live path are
   still bad.  The shard lock makes the re-read and the rename atomic with
   respect to other movers, and the re-check ([still_bad], structural
   only) means a concurrent writer that replaced the entry between the
   caller's failed verification and this call wins: the fresh entry stays,
   and no healthy bytes ever land in quarantine/. *)
let quarantine_if t key (still_bad : string -> bool) : unit =
  with_shard_lock t key (fun () ->
      let path = entry_path t key in
      let current =
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                try Some (really_input_string ic (in_channel_length ic))
                with End_of_file | Sys_error _ -> None)
      in
      match current with
      | None -> () (* already quarantined or removed by someone else *)
      | Some content when not (still_bad content) -> () (* replaced: healed *)
      | Some _ ->
          if Trace.on () then
            Trace.instant ~cat:"cache"
              ~args:[ ("key", Trace.Str key) ]
              "cache.quarantine";
          Perf.record "cache.corrupt" 0;
          mkdir_p (quarantine_dir t);
          let dest = Filename.concat (quarantine_dir t) (key ^ ".pdb") in
          (try Sys.rename path dest with Sys_error _ -> ()))

(** Look a key up.  [None] on: no entry, or an entry that fails
    verification — version mismatch, key mismatch (misfiled), digest
    mismatch (truncated / bit-flipped), unparseable body.  Every
    verification failure quarantines the entry so the next build stores a
    fresh one instead of re-probing the same corrupt file. *)
let load t key : Pdt_pdb.Pdb.t option =
  match read_file (entry_path t key) with
  | None -> None
  | Some content -> (
      let verified =
        match verify_content key content with
        | Some body when not (Fault.should "cache.load.corrupt") -> Some body
        | _ -> None
      in
      match verified with
      | None ->
          quarantine_if t key (fun c -> verify_content key c = None);
          None
      | Some body -> (
          (* digest-verified bytes should always parse; if they somehow
             don't, that's corruption too — quarantine, never crash.
             The body format is sniffed per entry (ASCII or PDB-B), so a
             cache dir can hold a mix of both and a build in either mode
             reuses entries written by the other.  Transient injections
             from the parser's own site propagate so the driver's retry
             policy sees them. *)
          try Some (Pdt_pdb.Pdb_io.of_string body)
          with
          | Fault.Injected _ as e -> raise e
          | _ ->
              (* still_bad = verifies but still won't parse.  A transient
                 injection inside the re-parse reads as "can't tell" and
                 leaves the entry alone — the next deterministic look
                 settles it. *)
              quarantine_if t key (fun c ->
                  match verify_content key c with
                  | None -> true
                  | Some b -> (
                      match Pdt_pdb.Pdb_io.of_string b with
                      | _ -> false
                      | exception Fault.Injected _ -> false
                      | exception _ -> true));
              None))

(** Store an already-serialized PDB body.  Callers that hold the bytes
    anyway (the build driver serializes each unit's PDB exactly once and
    reuses the string for the entry and its digest) avoid re-serializing.
    The temp name carries the PID and the domain id, so concurrent domains
    {e and} concurrent pdbbuild processes sharing a cache dir never write
    the same temp path; the temp file is removed if the write fails. *)
let store_serialized t key (body : string) : unit =
  let final = entry_path t key in
  mkdir_p (Filename.dirname final);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let write () =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let hdr = header key (Hashutil.string body) in
        if Fault.should "cache.write.torn" then begin
          (* a torn write that still reached the final path: half the
             entry, then rename.  load must catch it by digest. *)
          let half = hdr ^ "\n" ^ body in
          output_string oc (String.sub half 0 (String.length half / 2))
        end
        else begin
          output_string oc hdr;
          output_char oc '\n';
          Fault.check "cache.write.crash";
          output_string oc body
        end);
    Sys.rename tmp final
  in
  try write ()
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let store t key (pdb : Pdt_pdb.Pdb.t) : unit =
  store_serialized t key (Pdt_pdb.Pdb_write.to_string pdb)

(* ------------------------------------------------------------------ *)
(* Stale temp sweeping                                                 *)
(* ------------------------------------------------------------------ *)

(* Temp names are "<key>.pdb.tmp.<pid>.<domain>".  Extract the pid so the
   sweeper can distinguish a live writer's temp (untouchable) from the
   debris of a crashed one. *)
let tmp_pid (name : string) : int option =
  let marker = ".tmp." in
  let mlen = String.length marker in
  let n = String.length name in
  let rec find i =
    if i + mlen > n then None
    else if String.sub name i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j -> (
      match String.split_on_char '.' (String.sub name j (n - j)) with
      | pid :: _ -> int_of_string_opt pid
      | [] -> None)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM etc: exists, not ours *)

(** Remove temp files whose writing process is dead; returns how many were
    removed.  Crash-only workers (a SIGKILLed farm worker, a pdbbuild hit
    by OOM) run no cleanup handlers, so their half-written temps persist
    until someone sweeps; the pid-liveness gate makes the sweep safe to
    run while other builders are actively writing.  The farm driver runs
    this before and after every build. *)
let sweep_stale_tmps t : int =
  let removed = ref 0 in
  let sweep_dir dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            match tmp_pid name with
            | Some pid when not (pid_alive pid) -> (
                match Sys.remove (Filename.concat dir name) with
                | () ->
                    incr removed;
                    Perf.record "cache.tmp_swept" 0
                | exception Sys_error _ -> ())
            | _ -> ())
          names
  in
  (match Sys.readdir (objects_dir t) with
  | exception Sys_error _ -> ()
  | shards ->
      Array.iter
        (fun s -> sweep_dir (Filename.concat (objects_dir t) s))
        shards);
  (* legacy flat layout and any root-level state temps *)
  sweep_dir t.dir;
  !removed
