(** The intermediate language (IL).

    The front end elaborates parsed translation units into this typed entity
    graph, playing the role of the EDG IL in the paper: it records every
    high-level entity — source files, namespaces, classes, routines, types,
    templates, macros — together with source positions, template/instantiation
    relations and static call edges.  The IL Analyzer ([pdt_analyzer]) walks
    this structure to produce the PDB.

    Entities are identified by small integers, one id space per entity group
    (mirroring the PDB's [so#]/[ro#]/[cl#]/[ty#]/[te#]/[na#]/[ma#] scheme).
    Records are mutable because semantic analysis fills them in incrementally
    (declaration first, definition and call edges later). *)

open Pdt_util

type file_id = int
type namespace_id = int
type class_id = int
type routine_id = int
type type_id = int
type template_id = int
type macro_id = int

type access = Pub | Prot | Priv | Acc_na

let access_to_string = function
  | Pub -> "pub"
  | Prot -> "prot"
  | Priv -> "priv"
  | Acc_na -> "NA"

(** Parent ("the item it is nested in"): class, namespace or none. *)
type parent = Pclass of class_id | Pnamespace of namespace_id | Pnone

(* ------------------------------------------------------------------ *)
(* Entities                                                            *)
(* ------------------------------------------------------------------ *)

type file_entity = {
  fi_id : file_id;
  fi_name : string;
  mutable fi_includes : file_id list;  (** in inclusion order *)
}

type namespace_entity = {
  na_id : namespace_id;
  na_name : string;                    (** unqualified *)
  mutable na_loc : Srcloc.t;
  mutable na_parent : parent;
  mutable na_members : item_ref list;  (** in declaration order, reversed *)
  mutable na_alias : string option;    (** Some target for namespace aliases *)
}

and item_ref =
  | Rclass of class_id
  | Rroutine of routine_id
  | Rnamespace of namespace_id
  | Rtype of type_id
  | Rtemplate of template_id

type class_kind = Ckind_class | Ckind_struct | Ckind_union

let class_kind_to_string = function
  | Ckind_class -> "class"
  | Ckind_struct -> "struct"
  | Ckind_union -> "union"

type base_spec = {
  ba_access : access;
  ba_virtual : bool;
  ba_class : class_id;
}

type data_member = {
  dm_name : string;
  dm_loc : Srcloc.t;
  dm_access : access;
  dm_type : type_id;
  dm_static : bool;
  dm_mutable : bool;
}

type friend_ref = Friend_class of class_id | Friend_routine of routine_id

type class_entity = {
  cl_id : class_id;
  mutable cl_name : string;            (** display name, e.g. ["Stack<int>"] *)
  mutable cl_kind : class_kind;
  mutable cl_loc : Srcloc.t;
  mutable cl_parent : parent;
  mutable cl_access : access;          (** access in enclosing class, if nested *)
  mutable cl_template : template_id option;   (** template it instantiates *)
  mutable cl_spec_of : template_id option;    (** primary template, for specializations
                                                  (only filled in "fixed" mapping mode) *)
  mutable cl_bases : base_spec list;
  mutable cl_derived : class_id list;
  mutable cl_friends : friend_ref list;
  mutable cl_funcs : routine_id list;  (** member functions, declaration order *)
  mutable cl_members : data_member list;  (** data members, declaration order *)
  mutable cl_extent : Srcloc.extent;
  mutable cl_complete : bool;
}

type virt = Virt_no | Virt_virtual | Virt_pure

let virt_to_string = function
  | Virt_no -> "no"
  | Virt_virtual -> "virt"
  | Virt_pure -> "pure"

type routine_kind = Rk_normal | Rk_ctor | Rk_dtor | Rk_conversion | Rk_operator

type call_site = {
  cs_callee : routine_id;
  cs_virtual : bool;
  cs_loc : Srcloc.t;
}

type spawn_site = {
  ss_callee : routine_id;
  ss_loc : Srcloc.t;
  ss_join : Srcloc.t option;
      (** the [join] statement that post-dominates this spawn at the same
          nesting depth, when there is one; [None] = thread outlives the
          spawning routine *)
}

type param_info = {
  pi_name : string option;
  pi_type : type_id;
  pi_has_default : bool;
  pi_default : Pdt_ast.Ast.expr option;  (** default-argument expression *)
  pi_loc : Srcloc.t;
}

type routine_entity = {
  ro_id : routine_id;
  mutable ro_name : string;
  mutable ro_loc : Srcloc.t;
  mutable ro_parent : parent;
  mutable ro_access : access;
  mutable ro_sig : type_id;
  mutable ro_link : string;
  mutable ro_store : string;           (** "NA", "static", "extern" *)
  mutable ro_virt : virt;
  mutable ro_static : bool;
  mutable ro_inline : bool;
  mutable ro_const : bool;
  mutable ro_kind : routine_kind;
  mutable ro_template : template_id option;
  mutable ro_calls : call_site list;   (** reversed; see {!calls} *)
  mutable ro_spawns : spawn_site list; (** reversed; see {!spawns} *)
  mutable ro_extent : Srcloc.extent;
  mutable ro_params : param_info list;
  mutable ro_body : Pdt_ast.Ast.stmt option;
      (** the elaborated (template-substituted) body, for dynamic analysis *)
  mutable ro_inits : (string * Pdt_ast.Ast.expr list) list;
  mutable ro_defined : bool;
}

type ty_kind =
  | Tbuiltin of { bname : string; ykind : string; yikind : string }
  | Tptr of type_id
  | Tref of type_id
  | Tqual of { base : type_id; q_const : bool; q_volatile : bool }
      (** a cv-qualified alias of another type — PDB kind [tref] *)
  | Tarray of type_id * int option
  | Tfunc of {
      rett : type_id;
      params : (type_id * bool) list;  (** type, has-default *)
      ellipsis : bool;
      cqual : bool;                    (** const member function *)
      exceptions : type_id list option; (** None = may throw anything *)
    }
  | Tclass of class_id
  | Tenum of {
      ename : string;
      eparent : parent;
      constants : (string * int64 * Srcloc.t) list;
    }
  | Ttparam of string  (** dependent type inside an uninstantiated template *)
  | Terror

type type_entity = {
  ty_id : type_id;
  ty_kind : ty_kind;
  mutable ty_loc : Srcloc.t;
  mutable ty_parent : parent;
  mutable ty_access : access;
  mutable ty_typedef_names : string list;  (** names bound by typedefs *)
}

type template_kind = Tk_class | Tk_func | Tk_memfunc | Tk_statmem | Tk_memclass

let template_kind_to_string = function
  | Tk_class -> "class"
  | Tk_func -> "func"
  | Tk_memfunc -> "memfunc"
  | Tk_statmem -> "statmem"
  | Tk_memclass -> "memclass"

type inst_ref = Inst_class of class_id | Inst_routine of routine_id

type template_entity = {
  te_id : template_id;
  mutable te_name : string;
  mutable te_loc : Srcloc.t;
  mutable te_parent : parent;
  mutable te_access : access;
  mutable te_kind : template_kind;
  mutable te_text : string;
  mutable te_extent : Srcloc.extent;
  (* semantic side (not emitted to the PDB directly) *)
  mutable te_params : Pdt_ast.Ast.tparam list;
  mutable te_pattern : Pdt_ast.Ast.decl option;
  mutable te_instances : (string * inst_ref) list;  (** arg-key -> instance *)
  mutable te_specializations :
    (Pdt_ast.Ast.tparam list * Pdt_ast.Ast.template_arg list * Pdt_ast.Ast.decl) list;
}

type macro_entity = {
  ma_id : macro_id;
  ma_name : string;
  ma_kind : string;  (** "def" *)
  ma_text : string;
  ma_loc : Srcloc.t;
}

(** A namespace-scope variable.  Not a PDB item type (Table 1 lists none),
    but needed by the dynamic-analysis substrate (the interpreter). *)
type global_var = {
  gv_name : string;
  gv_qualified : string;
  gv_type : type_id;
  gv_init : Pdt_ast.Ast.var_init;
  gv_loc : Srcloc.t;
  gv_parent : parent;
}

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

type program = {
  files : (file_id, file_entity) Hashtbl.t;
  namespaces : (namespace_id, namespace_entity) Hashtbl.t;
  classes : (class_id, class_entity) Hashtbl.t;
  routines : (routine_id, routine_entity) Hashtbl.t;
  types : (type_id, type_entity) Hashtbl.t;
  templates : (template_id, template_entity) Hashtbl.t;
  macros : (macro_id, macro_entity) Hashtbl.t;
  mutable globals : global_var list;  (* reversed *)
  type_intern : (string, type_id) Hashtbl.t;
  mutable next_file : int;
  mutable next_namespace : int;
  mutable next_class : int;
  mutable next_routine : int;
  mutable next_type : int;
  mutable next_template : int;
  mutable next_macro : int;
  (* creation order, reversed *)
  mutable file_order : file_id list;
  mutable namespace_order : namespace_id list;
  mutable class_order : class_id list;
  mutable routine_order : routine_id list;
  mutable type_order : type_id list;
  mutable template_order : template_id list;
  mutable macro_order : macro_id list;
  mutable main_file : file_id option;
}

let create_program () =
  { files = Hashtbl.create 16; namespaces = Hashtbl.create 16;
    classes = Hashtbl.create 64; routines = Hashtbl.create 256;
    types = Hashtbl.create 256; templates = Hashtbl.create 64;
    macros = Hashtbl.create 64; globals = [];
    type_intern = Hashtbl.create 256;
    next_file = 1; next_namespace = 1; next_class = 1; next_routine = 1;
    next_type = 1; next_template = 1; next_macro = 1;
    file_order = []; namespace_order = []; class_order = []; routine_order = [];
    type_order = []; template_order = []; macro_order = []; main_file = None }

(* accessors *)

let file p id = Hashtbl.find p.files id
let namespace p id = Hashtbl.find p.namespaces id
let class_ p id = Hashtbl.find p.classes id
let routine p id = Hashtbl.find p.routines id
let type_ p id = Hashtbl.find p.types id
let template p id = Hashtbl.find p.templates id
let macro p id = Hashtbl.find p.macros id

let files p = List.rev_map (file p) p.file_order
let namespaces p = List.rev_map (namespace p) p.namespace_order
let classes p = List.rev_map (class_ p) p.class_order
let routines p = List.rev_map (routine p) p.routine_order
let types p = List.rev_map (type_ p) p.type_order
let templates p = List.rev_map (template p) p.template_order
let macros p = List.rev_map (macro p) p.macro_order
let globals p = List.rev p.globals

(** Call sites of a routine, in source order. *)
let calls (r : routine_entity) = List.rev r.ro_calls

(** Spawn sites of a routine, in source order. *)
let spawns (r : routine_entity) = List.rev r.ro_spawns

(* constructors *)

let add_file p name =
  let id = p.next_file in
  p.next_file <- id + 1;
  let f = { fi_id = id; fi_name = name; fi_includes = [] } in
  Hashtbl.replace p.files id f;
  p.file_order <- id :: p.file_order;
  f

let add_namespace p ~name ~loc ~parent =
  let id = p.next_namespace in
  p.next_namespace <- id + 1;
  let n =
    { na_id = id; na_name = name; na_loc = loc; na_parent = parent;
      na_members = []; na_alias = None }
  in
  Hashtbl.replace p.namespaces id n;
  p.namespace_order <- id :: p.namespace_order;
  n

let add_class p ~name ~kind ~loc ~parent ~access =
  let id = p.next_class in
  p.next_class <- id + 1;
  let c =
    { cl_id = id; cl_name = name; cl_kind = kind; cl_loc = loc;
      cl_parent = parent; cl_access = access; cl_template = None;
      cl_spec_of = None; cl_bases = []; cl_derived = []; cl_friends = [];
      cl_funcs = []; cl_members = []; cl_extent = Srcloc.no_extent;
      cl_complete = false }
  in
  Hashtbl.replace p.classes id c;
  p.class_order <- id :: p.class_order;
  c

let add_routine p ~name ~loc ~parent ~access ~sig_ =
  let id = p.next_routine in
  p.next_routine <- id + 1;
  let r =
    { ro_id = id; ro_name = name; ro_loc = loc; ro_parent = parent;
      ro_access = access; ro_sig = sig_; ro_link = "C++"; ro_store = "NA";
      ro_virt = Virt_no; ro_static = false; ro_inline = false;
      ro_const = false; ro_kind = Rk_normal; ro_template = None;
      ro_calls = []; ro_spawns = []; ro_extent = Srcloc.no_extent; ro_params = [];
      ro_body = None; ro_inits = []; ro_defined = false }
  in
  Hashtbl.replace p.routines id r;
  p.routine_order <- id :: p.routine_order;
  r

let add_template p ~name ~loc ~parent ~access ~kind =
  let id = p.next_template in
  p.next_template <- id + 1;
  let te =
    { te_id = id; te_name = name; te_loc = loc; te_parent = parent;
      te_access = access; te_kind = kind; te_text = "";
      te_extent = Srcloc.no_extent; te_params = []; te_pattern = None;
      te_instances = []; te_specializations = [] }
  in
  Hashtbl.replace p.templates id te;
  p.template_order <- id :: p.template_order;
  te

let add_macro p ~name ~kind ~text ~loc =
  let id = p.next_macro in
  p.next_macro <- id + 1;
  let m = { ma_id = id; ma_name = name; ma_kind = kind; ma_text = text; ma_loc = loc } in
  Hashtbl.replace p.macros id m;
  p.macro_order <- id :: p.macro_order;
  m

(* ------------------------------------------------------------------ *)
(* Type interning and naming                                           *)
(* ------------------------------------------------------------------ *)

(* A canonical structural key for interning. *)
let rec type_key p (k : ty_kind) : string =
  match k with
  | Tbuiltin { bname; _ } -> "b:" ^ bname
  | Tptr t -> "p:" ^ string_of_int t
  | Tref t -> "r:" ^ string_of_int t
  | Tqual { base; q_const; q_volatile } ->
      Printf.sprintf "q:%d:%b:%b" base q_const q_volatile
  | Tarray (t, n) ->
      Printf.sprintf "a:%d:%s" t
        (match n with None -> "?" | Some n -> string_of_int n)
  | Tfunc { rett; params; ellipsis; cqual; exceptions } ->
      Printf.sprintf "f:%d:(%s):%b:%b:%s" rett
        (String.concat ","
           (List.map (fun (t, d) -> Printf.sprintf "%d%s" t (if d then "=" else "")) params))
        ellipsis cqual
        (match exceptions with
         | None -> "*"
         | Some ts -> String.concat "," (List.map string_of_int ts))
  | Tclass c -> "c:" ^ string_of_int c
  | Tenum { ename; eparent; _ } ->
      Printf.sprintf "e:%s:%s" ename
        (match eparent with
         | Pclass c -> "c" ^ string_of_int c
         | Pnamespace n -> "n" ^ string_of_int n
         | Pnone -> "g")
  | Ttparam s -> "t:" ^ s
  | Terror -> "!"
  [@@warning "-27"]

and intern_type ?(loc = Srcloc.dummy) ?(parent = Pnone) ?(access = Acc_na) p (k : ty_kind) :
    type_id =
  let key = type_key p k in
  match Hashtbl.find_opt p.type_intern key with
  | Some id -> id
  | None ->
      let id = p.next_type in
      p.next_type <- id + 1;
      let t =
        { ty_id = id; ty_kind = k; ty_loc = loc; ty_parent = parent;
          ty_access = access; ty_typedef_names = [] }
      in
      Hashtbl.replace p.types id t;
      Hashtbl.replace p.type_intern key id;
      p.type_order <- id :: p.type_order;
      id

(** Human-readable type name, matching the style of Figure 3
    (e.g. ["const int &"], ["bool () const"], ["void (const int &)"]). *)
let rec type_name p (id : type_id) : string =
  match (type_ p id).ty_kind with
  | Tbuiltin { bname; _ } -> bname
  | Tptr t -> type_name p t ^ " *"
  | Tref t -> type_name p t ^ " &"
  | Tqual { base; q_const; q_volatile } ->
      (if q_const then "const " else "")
      ^ (if q_volatile then "volatile " else "")
      ^ type_name p base
  | Tarray (t, None) -> type_name p t ^ " []"
  | Tarray (t, Some n) -> Printf.sprintf "%s [%d]" (type_name p t) n
  | Tfunc { rett; params; ellipsis; cqual; _ } ->
      Printf.sprintf "%s (%s%s)%s" (type_name p rett)
        (String.concat ", " (List.map (fun (t, _) -> type_name p t) params))
        (if ellipsis then (if params = [] then "..." else ", ...") else "")
        (if cqual then " const" else "")
  | Tclass c -> (class_ p c).cl_name
  | Tenum { ename; _ } -> ename
  | Ttparam s -> s
  | Terror -> "<error>"

(* common builtins *)

let builtin_type p ~bname ~ykind ~yikind =
  intern_type p (Tbuiltin { bname; ykind; yikind })

let ty_int p = builtin_type p ~bname:"int" ~ykind:"int" ~yikind:"int"
let ty_bool p = builtin_type p ~bname:"bool" ~ykind:"bool" ~yikind:"char"
let ty_void p = builtin_type p ~bname:"void" ~ykind:"void" ~yikind:"NA"
let ty_char p = builtin_type p ~bname:"char" ~ykind:"char" ~yikind:"char"
let ty_double p = builtin_type p ~bname:"double" ~ykind:"float" ~yikind:"double"
let ty_float p = builtin_type p ~bname:"float" ~ykind:"float" ~yikind:"float"
let ty_error p = intern_type p Terror

(** Strip cv-qualification and references down to the underlying type. *)
let rec strip_qual_ref p id =
  match (type_ p id).ty_kind with
  | Tqual { base; _ } -> strip_qual_ref p base
  | Tref t -> strip_qual_ref p t
  | _ -> id

(** The class behind a type, looking through cv/ref/ptr. *)
let rec class_of_type p id : class_id option =
  match (type_ p id).ty_kind with
  | Tclass c -> Some c
  | Tqual { base; _ } -> class_of_type p base
  | Tref t | Tptr t -> class_of_type p t
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Queries used by tools                                               *)
(* ------------------------------------------------------------------ *)

(** Fully qualified display name of a routine, e.g.
    ["Stack<int>::push"]. *)
let routine_full_name p (r : routine_entity) : string =
  let rec parent_prefix = function
    | Pclass c -> parent_prefix (class_ p c).cl_parent ^ (class_ p c).cl_name ^ "::"
    | Pnamespace n when (namespace p n).na_name <> "" ->
        parent_prefix (namespace p n).na_parent ^ (namespace p n).na_name ^ "::"
    | Pnamespace _ | Pnone -> ""
  in
  parent_prefix r.ro_parent ^ r.ro_name

let class_full_name p (c : class_entity) : string =
  let rec parent_prefix = function
    | Pclass c -> parent_prefix (class_ p c).cl_parent ^ (class_ p c).cl_name ^ "::"
    | Pnamespace n when (namespace p n).na_name <> "" ->
        parent_prefix (namespace p n).na_parent ^ (namespace p n).na_name ^ "::"
    | Pnamespace _ | Pnone -> ""
  in
  parent_prefix c.cl_parent ^ c.cl_name

(** Find a member function by name (all overloads). *)
let find_member_funcs p (c : class_entity) name : routine_entity list =
  List.filter_map
    (fun id ->
      let r = routine p id in
      if String.equal r.ro_name name then Some r else None)
    c.cl_funcs

(** Signature string used to distinguish overloads. *)
let overload_key p (r : routine_entity) : string =
  r.ro_name ^ ":" ^ type_name p r.ro_sig

(** Statistics used by benchmarks. *)
type stats = {
  n_files : int;
  n_namespaces : int;
  n_classes : int;
  n_routines : int;
  n_types : int;
  n_templates : int;
  n_macros : int;
  n_instantiated_classes : int;
  n_instantiated_routines : int;
  n_defined_routines : int;
  n_call_edges : int;
}

let stats p : stats =
  let n_inst_cl =
    List.length (List.filter (fun c -> c.cl_template <> None) (classes p))
  in
  let rs = routines p in
  {
    n_files = Hashtbl.length p.files;
    n_namespaces = Hashtbl.length p.namespaces;
    n_classes = Hashtbl.length p.classes;
    n_routines = Hashtbl.length p.routines;
    n_types = Hashtbl.length p.types;
    n_templates = Hashtbl.length p.templates;
    n_macros = Hashtbl.length p.macros;
    n_instantiated_classes = n_inst_cl;
    n_instantiated_routines =
      List.length (List.filter (fun r -> r.ro_template <> None) rs);
    n_defined_routines = List.length (List.filter (fun r -> r.ro_defined) rs);
    n_call_edges = List.fold_left (fun a r -> a + List.length r.ro_calls) 0 rs;
  }
