(** Scopes and symbol tables for semantic analysis.

    A scope is a mutable symbol table with a parent link, plus the list of
    namespaces pulled in by using-directives.  Class scopes additionally
    chain to base-class scopes during lookup. *)

open Pdt_il

type var_sym = {
  vs_name : string;
  vs_type : Il.type_id;
  vs_global : bool;  (** namespace-scope variable (vs. local/param) *)
}

type symbol =
  | Sym_class of Il.class_id
  | Sym_routines of Il.routine_id list ref  (** overload set; grows in place *)
  | Sym_template of Il.template_id
  | Sym_typedef of Il.type_id
  | Sym_enum of Il.type_id
  | Sym_enum_const of Il.type_id * int64
  | Sym_namespace of t
  | Sym_var of var_sym

and kind =
  | Sk_global
  | Sk_namespace of Il.namespace_id
  | Sk_class of Il.class_id
  | Sk_block

and t = {
  kind : kind;
  parent : t option;
  syms : (string, symbol) Hashtbl.t;
  mutable usings : t list;  (** scopes of used namespaces *)
}

let create ?parent kind = { kind; parent; syms = Hashtbl.create 16; usings = [] }

let bind sc name sym = Hashtbl.replace sc.syms name sym

(** Add a routine to [name]'s overload set (creating the set if needed).
    Returns the full overload set. *)
let bind_routine sc name (id : Il.routine_id) : Il.routine_id list =
  match Hashtbl.find_opt sc.syms name with
  | Some (Sym_routines rs) ->
      if not (List.mem id !rs) then rs := !rs @ [ id ];
      !rs
  | _ ->
      let rs = ref [ id ] in
      Hashtbl.replace sc.syms name (Sym_routines rs);
      !rs

let add_using sc target = if not (List.memq target sc.usings) then sc.usings <- sc.usings @ [ target ]

(** Look [name] up in this scope only (no parent chain), including
    using-directives. *)
let find_local sc name : symbol option =
  match Hashtbl.find_opt sc.syms name with
  | Some s -> Some s
  | None ->
      let rec through = function
        | [] -> None
        | u :: rest -> (
            match Hashtbl.find_opt u.syms name with
            | Some s -> Some s
            | None -> through rest)
      in
      through sc.usings

(** Walk the parent chain. *)
let rec find sc name : symbol option =
  match find_local sc name with
  | Some s -> Some s
  | None -> ( match sc.parent with Some p -> find p name | None -> None)

(** The innermost enclosing class scope, if any. *)
let rec enclosing_class sc : Il.class_id option =
  match sc.kind with
  | Sk_class c -> Some c
  | _ -> ( match sc.parent with Some p -> enclosing_class p | None -> None)

(** The innermost enclosing namespace id, if any. *)
let rec enclosing_namespace sc : Il.namespace_id option =
  match sc.kind with
  | Sk_namespace n -> Some n
  | _ -> ( match sc.parent with Some p -> enclosing_namespace p | None -> None)

(** The [Il.parent] of entities declared directly in this scope. *)
let rec parent_of sc : Il.parent =
  match sc.kind with
  | Sk_class c -> Il.Pclass c
  | Sk_namespace n -> Il.Pnamespace n
  | Sk_global -> Il.Pnone
  | Sk_block -> ( match sc.parent with Some p -> parent_of p | None -> Il.Pnone)
