(** Syntactic substitution of template parameters.

    Instantiation in PDT's front end follows the classic scheme: the template
    pattern is kept as an AST, and instantiating [Stack<int>] substitutes
    [Object := int] throughout the pattern before (re-)elaborating it.  The
    substitution environment maps parameter names to template arguments. *)

open Pdt_ast.Ast

type env = (string * template_arg) list

let lookup (env : env) name = List.assoc_opt name env

(** Turn a template argument into a type (when a parameter is used in type
    position). *)
let type_of_arg = function
  | TA_type t -> Some t
  | TA_expr _ -> None

let rec subst_type (env : env) (t : type_expr) : type_expr =
  match t with
  | TBuiltin _ -> t
  | TName q -> (
      match q with
      | { global = false; parts = [ { id; targs = None } ] } -> (
          match lookup env id with
          | Some (TA_type t') -> t'
          | Some (TA_expr _) | None -> TName (subst_qual_name env q))
      | _ -> TName (subst_qual_name env q))
  | TPtr t -> TPtr (subst_type env t)
  | TRef t -> TRef (subst_type env t)
  | TConst t -> TConst (subst_type env t)
  | TVolatile t -> TVolatile (subst_type env t)
  | TArray (t, e) -> TArray (subst_type env t, Option.map (subst_expr env) e)
  | TFunc (r, ps, v) -> TFunc (subst_type env r, List.map (subst_param env) ps, v)

and subst_qual_name env (q : qual_name) : qual_name =
  { q with parts = List.map (subst_name_part env) q.parts }

and subst_name_part env (p : name_part) : name_part =
  { p with targs = Option.map (List.map (subst_targ env)) p.targs }

and subst_targ env = function
  | TA_type t -> TA_type (subst_type env t)
  | TA_expr e -> TA_expr (subst_expr env e)

and subst_param env (p : param) : param =
  { p with ptype = subst_type env p.ptype;
           pdefault = Option.map (subst_expr env) p.pdefault }

and subst_expr env (e : expr) : expr =
  let k =
    match e.e with
    | (IntE _ | FloatE _ | CharE _ | StringE _ | BoolE _ | ThisE) as k -> k
    | IdE { global = false; parts = [ { id; targs = None } ] } as k -> (
        (* a non-type template parameter used as an expression *)
        match lookup env id with
        | Some (TA_expr e') -> e'.e
        | Some (TA_type t) -> Construct (t, [])  (* T() — e.g. default value *)
        | None -> k)
    | IdE q -> IdE (subst_qual_name env q)
    | Unary (op, a) -> Unary (op, subst_expr env a)
    | Postfix (op, a) -> Postfix (op, subst_expr env a)
    | Binary (op, a, b) -> Binary (op, subst_expr env a, subst_expr env b)
    | Assign (op, a, b) -> Assign (op, subst_expr env a, subst_expr env b)
    | Cond (c, a, b) -> Cond (subst_expr env c, subst_expr env a, subst_expr env b)
    | Call (f, args) -> Call (subst_expr env f, List.map (subst_expr env) args)
    | Member (o, arrow, m) -> Member (subst_expr env o, arrow, subst_qual_name env m)
    | Index (a, i) -> Index (subst_expr env a, subst_expr env i)
    | CCast (t, a) -> CCast (subst_type env t, subst_expr env a)
    | NamedCast (k, t, a) -> NamedCast (k, subst_type env t, subst_expr env a)
    | Construct (t, args) -> Construct (subst_type env t, List.map (subst_expr env) args)
    | New (t, args, n) ->
        New (subst_type env t, Option.map (List.map (subst_expr env)) args,
             Option.map (subst_expr env) n)
    | Delete (arr, a) -> Delete (arr, subst_expr env a)
    | SizeofE a -> SizeofE (subst_expr env a)
    | SizeofT t -> SizeofT (subst_type env t)
    | ThrowE a -> ThrowE (Option.map (subst_expr env) a)
    | Comma (a, b) -> Comma (subst_expr env a, subst_expr env b)
  in
  { e with e = k }

and subst_stmt env (s : stmt) : stmt =
  let k =
    match s.s with
    | SExpr e -> SExpr (Option.map (subst_expr env) e)
    | SDecl vds -> SDecl (List.map (subst_var_decl env) vds)
    | SCompound ss -> SCompound (List.map (subst_stmt env) ss)
    | SIf (c, a, b) ->
        SIf (subst_expr env c, subst_stmt env a, Option.map (subst_stmt env) b)
    | SWhile (c, b) -> SWhile (subst_expr env c, subst_stmt env b)
    | SDoWhile (b, c) -> SDoWhile (subst_stmt env b, subst_expr env c)
    | SFor (i, c, st, b) ->
        SFor (Option.map (subst_stmt env) i, Option.map (subst_expr env) c,
              Option.map (subst_expr env) st, subst_stmt env b)
    | SReturn e -> SReturn (Option.map (subst_expr env) e)
    | (SBreak | SContinue) as k -> k
    | SSwitch (e, cases) ->
        SSwitch
          (subst_expr env e,
           List.map
             (fun c ->
               { case_guard = Option.map (subst_expr env) c.case_guard;
                 case_body = List.map (subst_stmt env) c.case_body })
             cases)
    | STry (b, hs) ->
        STry
          (subst_stmt env b,
           List.map
             (fun h ->
               { h_param = Option.map (subst_param env) h.h_param;
                 h_body = subst_stmt env h.h_body })
             hs)
    | SSpawn e -> SSpawn (subst_expr env e)
    | SJoin _ as k -> k
  in
  { s with s = k }

and subst_var_decl env (v : var_decl) : var_decl =
  { v with
    v_type = subst_type env v.v_type;
    v_init =
      (match v.v_init with
       | NoInit -> NoInit
       | EqInit e -> EqInit (subst_expr env e)
       | CtorInit es -> CtorInit (List.map (subst_expr env) es)) }

let subst_func env (f : func_def) : func_def =
  { f with
    f_ret = Option.map (subst_type env) f.f_ret;
    f_params = List.map (subst_param env) f.f_params;
    f_inits = List.map (fun (n, es) -> (n, List.map (subst_expr env) es)) f.f_inits;
    f_throw = Option.map (List.map (subst_type env)) f.f_throw;
    f_body = Option.map (subst_stmt env) f.f_body;
    f_name = subst_qual_name env f.f_name }

let rec subst_decl env (d : decl) : decl =
  let k =
    match d.d with
    | DNamespace (n, ds, r) -> DNamespace (n, List.map (subst_decl env) ds, r)
    | DClass c -> DClass (subst_class env c)
    | DEnum (n, items) ->
        DEnum (n, List.map (fun (s, e, l) -> (s, Option.map (subst_expr env) e, l)) items)
    | DTypedef (t, n) -> DTypedef (subst_type env t, n)
    | DFunction f -> DFunction (subst_func env f)
    | DVar v -> DVar (subst_var_decl env v)
    | DTemplate (ps, inner, text) ->
        (* a member template: its own parameters shadow the outer env *)
        let shadowed =
          List.filter_map
            (function
              | TP_type (n, _) -> Some n
              | TP_nontype (_, n, _) -> Some n
              | TP_template n -> Some n)
            ps
        in
        let env' = List.filter (fun (n, _) -> not (List.mem n shadowed)) env in
        DTemplate (ps, subst_decl env' inner, text)
    | DUsing (q, ns) -> DUsing (subst_qual_name env q, ns)
    | DAccess _ | DEmpty -> d.d
    | DFriend inner -> DFriend (subst_decl env inner)
    | DExplicitInst inner -> DExplicitInst (subst_decl env inner)
  in
  { d with d = k }

and subst_class env (c : class_def) : class_def =
  { c with
    c_name = Option.map (subst_name_part env) c.c_name;
    c_bases =
      List.map (fun b -> { b with b_name = subst_qual_name env b.b_name }) c.c_bases;
    c_members = List.map (subst_decl env) c.c_members }
