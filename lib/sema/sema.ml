(** Semantic analysis: elaborates parsed translation units into the IL.

    This module plays the role of the EDG front end's semantic phase in the
    paper.  Its responsibilities:

    - name resolution through namespace / class / block scopes;
    - creation of IL entities (classes, routines, types, templates) with
      source positions;
    - {b template instantiation in "used" mode}: every template entity
      actually used by the compilation is instantiated and represented in
      the IL; member functions of instantiated class templates get their
      bodies instantiated only when they are themselves used (called), so
      unused members remain declarations — exactly the behaviour §2 of the
      paper relies on;
    - template specializations (explicit and partial) with the paper's
      location-based template↔instantiation back-mapping, plus the "fixed"
      mode (template ids carried in the IL) the paper proposes as a remedy;
    - static call-graph edges, including the special handling of
      constructor/destructor calls at object lifetime boundaries;
    - overload resolution (arity + type-proximity scoring).

    The [instantiate_used] option switches between the paper's two EDG
    instantiation modes: [true] is the "used" mode PDT enables; [false]
    defers instantiations and merely records requests, modelling the
    automatic/prelinker scheme simulated by [pdt_prelink]. *)

open Pdt_util
open Pdt_il
open Il
module Ast = Pdt_ast.Ast

type options = {
  instantiate_used : bool;
      (** instantiate used template entities into the IL (EDG "used" mode) *)
  map_specializations : bool;
      (** "fixed" mode: carry template ids through the IL so specializations
          can be mapped back to their primary template (paper §3.1 remedy) *)
}

let default_options = { instantiate_used = true; map_specializations = false }

(** A resolved template argument. *)
type rarg = Rtype of Il.type_id | Rexpr of int64

type t = {
  prog : Il.program;
  diags : Diag.engine;
  opts : options;
  limits : Limits.t;
  (* budget-breach messages already reported (once per TU each) *)
  mutable reported_limits : string list;
  global : Scope.t;
  (* class id -> its member scope *)
  class_scopes : (Il.class_id, Scope.t) Hashtbl.t;
  (* template id -> its defining scope *)
  template_scopes : (Il.template_id, Scope.t) Hashtbl.t;
  (* instantiated class -> (template, resolved args) *)
  inst_args : (Il.class_id, Il.template_id * rarg list) Hashtbl.t;
  (* class template id -> out-of-line member definitions *)
  member_defs :
    (Il.template_id,
     (string * Ast.tparam list * Ast.func_def * Il.template_id) list ref)
    Hashtbl.t;
  (* routines whose body elaboration is pending (worklist) *)
  body_queue : (Il.routine_id * pending_body) Queue.t;
  (* member functions of instantiated class templates whose bodies have not
     been requested yet (used-mode laziness) *)
  lazy_bodies : (Il.routine_id, pending_body) Hashtbl.t;
  (* instantiation requests recorded when instantiate_used = false *)
  mutable deferred_requests : string list;
  (* implicit ctors/dtors created on demand *)
  implicit_members : (Il.class_id * string, Il.routine_id) Hashtbl.t;
  mutable all_instantiations : (Il.template_id * string) list;  (* audit log *)
}

and benv = {
  be_scope : Scope.t;                (** innermost block scope *)
  be_this : Il.class_id option;
  be_routine : Il.routine_entity;
}

and pending_body = {
  pb_func : Ast.func_def;        (* fully substituted *)
  pb_scope : Scope.t;            (* scope to elaborate in (class or ns scope) *)
  pb_this : Il.class_id option;
  pb_rtempl : Il.template_id option;  (* template to credit on instantiation *)
}

let create ?(opts = default_options) ?(limits = Limits.default ()) ~diags () =
  let prog = Il.create_program () in
  {
    prog; diags; opts; limits;
    reported_limits = [];
    global = Scope.create Scope.Sk_global;
    class_scopes = Hashtbl.create 64;
    template_scopes = Hashtbl.create 64;
    inst_args = Hashtbl.create 64;
    member_defs = Hashtbl.create 16;
    body_queue = Queue.create ();
    lazy_bodies = Hashtbl.create 64;
    deferred_requests = [];
    implicit_members = Hashtbl.create 16;
    all_instantiations = [];
  }

let program t = t.prog

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Record a budget breach as a [Fatal] diagnostic, once per message.
   Analysis continues: the failed construct degrades into a poisoned
   placeholder (error type / missing instance). *)
let report_limit t ~loc e =
  let msg = Limits.describe e in
  if not (List.mem msg t.reported_limits) then begin
    t.reported_limits <- msg :: t.reported_limits;
    Diag.fatal_note t.diags loc "%s" msg
  end

let access_of_ast = function
  | Ast.Public -> Pub
  | Ast.Protected -> Prot
  | Ast.Private -> Priv

let builtin_info (b : Ast.builtin) : string * string * string =
  (* canonical name, ykind, yikind *)
  let prefix =
    (match b.signedness with
     | Some `Unsigned -> "unsigned "
     | Some `Signed -> "signed "
     | None -> "")
    ^
    match b.length with
    | Some `Short -> "short "
    | Some `Long -> "long "
    | Some `LongLong -> "long long "
    | None -> ""
  in
  match b.base with
  | `Void -> ("void", "void", "NA")
  | `Bool -> ("bool", "bool", "char")
  | `Char -> (String.trim (prefix ^ "char"), "char", "char")
  | `Wchar -> ("wchar_t", "wchar", "int")
  | `Int ->
      let name = if prefix = "" then "int" else String.trim prefix in
      (name, "int", "int")
  | `Float -> ("float", "float", "float")
  | `Double -> (String.trim (prefix ^ "double"), "float", "double")

let class_scope t (cl : Il.class_id) : Scope.t =
  match Hashtbl.find_opt t.class_scopes cl with
  | Some s -> s
  | None ->
      (* classes without bodies (forward decls) still need a scope *)
      let s = Scope.create ~parent:t.global (Scope.Sk_class cl) in
      Hashtbl.replace t.class_scopes cl s;
      s

let rarg_key t = function
  | Rtype ty -> Il.type_name t.prog ty
  | Rexpr n -> Int64.to_string n

let rargs_key t args = String.concat ", " (List.map (rarg_key t) args)

(* ------------------------------------------------------------------ *)
(* Constant expression evaluation                                      *)
(* ------------------------------------------------------------------ *)

let rec const_eval t scope (e : Ast.expr) : int64 option =
  match e.Ast.e with
  | Ast.IntE v -> Some v
  | Ast.BoolE b -> Some (if b then 1L else 0L)
  | Ast.CharE c -> Some (Int64.of_int c)
  | Ast.IdE { global = false; parts = [ { id; targs = None } ] } -> (
      match Scope.find scope id with
      | Some (Scope.Sym_enum_const (_, v)) -> Some v
      | _ -> None)
  | Ast.Unary ("-", a) -> Option.map Int64.neg (const_eval t scope a)
  | Ast.Unary ("+", a) -> const_eval t scope a
  | Ast.Unary ("~", a) -> Option.map Int64.lognot (const_eval t scope a)
  | Ast.Unary ("!", a) ->
      Option.map (fun v -> if v = 0L then 1L else 0L) (const_eval t scope a)
  | Ast.Binary (op, a, b) -> (
      match (const_eval t scope a, const_eval t scope b) with
      | Some x, Some y -> (
          let bool v = if v then 1L else 0L in
          match op with
          | "+" -> Some (Int64.add x y)
          | "-" -> Some (Int64.sub x y)
          | "*" -> Some (Int64.mul x y)
          | "/" -> if y = 0L then None else Some (Int64.div x y)
          | "%" -> if y = 0L then None else Some (Int64.rem x y)
          | "<<" -> Some (Int64.shift_left x (Int64.to_int y))
          | ">>" -> Some (Int64.shift_right x (Int64.to_int y))
          | "&" -> Some (Int64.logand x y)
          | "|" -> Some (Int64.logor x y)
          | "^" -> Some (Int64.logxor x y)
          | "==" -> Some (bool (x = y))
          | "!=" -> Some (bool (x <> y))
          | "<" -> Some (bool (x < y))
          | ">" -> Some (bool (x > y))
          | "<=" -> Some (bool (x <= y))
          | ">=" -> Some (bool (x >= y))
          | "&&" -> Some (bool (x <> 0L && y <> 0L))
          | "||" -> Some (bool (x <> 0L || y <> 0L))
          | _ -> None)
      | _ -> None)
  | Ast.Cond (c, a, b) -> (
      match const_eval t scope c with
      | Some v -> const_eval t scope (if v <> 0L then a else b)
      | None -> None)
  | Ast.SizeofT ty ->
      Some
        (match Ast.unqual ty with
         | Ast.TBuiltin { base = `Char; _ } | Ast.TBuiltin { base = `Bool; _ } -> 1L
         | Ast.TBuiltin { base = `Int; length = Some `Short; _ } -> 2L
         | Ast.TBuiltin { base = `Int; length = Some (`Long | `LongLong); _ } -> 8L
         | Ast.TBuiltin { base = `Int; _ } -> 4L
         | Ast.TBuiltin { base = `Float; _ } -> 4L
         | Ast.TBuiltin { base = `Double; _ } -> 8L
         | Ast.TPtr _ -> 8L
         | _ -> 8L)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Type resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* Rebuild an AST type from an IL type — used to build substitution
   environments.  Class types are emitted as a single name part holding the
   class's display name, which we bind in the global scope so the name
   round-trips through resolution. *)
let rec ast_of_type t (ty : Il.type_id) : Ast.type_expr =
  match (Il.type_ t.prog ty).ty_kind with
  | Tbuiltin { bname; _ } -> ast_of_builtin bname
  | Tptr ty' -> Ast.TPtr (ast_of_type t ty')
  | Tref ty' -> Ast.TRef (ast_of_type t ty')
  | Tqual { base; q_const; q_volatile } ->
      let inner = ast_of_type t base in
      let inner = if q_volatile then Ast.TVolatile inner else inner in
      if q_const then Ast.TConst inner else inner
  | Tarray (ty', n) ->
      Ast.TArray
        (ast_of_type t ty',
         Option.map (fun n -> { Ast.e = Ast.IntE (Int64.of_int n); eloc = Srcloc.dummy }) n)
  | Tclass c ->
      let name = Il.class_full_name t.prog (Il.class_ t.prog c) in
      Scope.bind t.global name (Scope.Sym_class c);
      Ast.TName (Ast.simple_name name)
  | Tenum { ename; _ } ->
      Scope.bind t.global ename (Scope.Sym_enum ty);
      Ast.TName (Ast.simple_name ename)
  | Ttparam s -> Ast.TName (Ast.simple_name s)
  | Tfunc _ | Terror -> Ast.TName (Ast.simple_name "<error>")

and ast_of_builtin bname : Ast.type_expr =
  let words = String.split_on_char ' ' bname in
  let base = ref `Int and signedness = ref None and length = ref None in
  List.iter
    (fun w ->
      match w with
      | "void" -> base := `Void
      | "bool" -> base := `Bool
      | "char" -> base := `Char
      | "wchar_t" -> base := `Wchar
      | "int" -> base := `Int
      | "float" -> base := `Float
      | "double" -> base := `Double
      | "signed" -> signedness := Some `Signed
      | "unsigned" -> signedness := Some `Unsigned
      | "short" -> length := Some `Short
      | "long" ->
          length := (match !length with Some `Long -> Some `LongLong | _ -> Some `Long)
      | _ -> ())
    words;
  Ast.TBuiltin { base = !base; signedness = !signedness; length = !length }

(* Resolve a qualified name to a symbol. *)
let rec resolve_name t scope (q : Ast.qual_name) ~loc : Scope.symbol option =
  let start : Scope.t = if q.Ast.global then t.global else scope in
  let rec walk (sc : Scope.t) parts ~first =
    match parts with
    | [] -> None
    | [ (p : Ast.name_part) ] -> (
        let found = if first then Scope.find sc p.id else Scope.find_local sc p.id in
        let found =
          match found with
          | None when not first -> class_member_symbol t sc p.id
          | f -> f
        in
        match (found, p.targs) with
        | Some (Scope.Sym_template te), Some targs ->
            instantiated_symbol t scope te targs ~loc
        | (Some _ as s), None -> s
        | Some _, Some _ -> found  (* e.g. typedef'd template-id; tolerate *)
        | None, _ -> None)
    | (p : Ast.name_part) :: rest -> (
        let found = if first then Scope.find sc p.id else Scope.find_local sc p.id in
        let found =
          match found with
          | None when not first -> class_member_symbol t sc p.id
          | f -> f
        in
        let enter sym =
          match sym with
          | Scope.Sym_namespace ns_scope -> walk ns_scope rest ~first:false
          | Scope.Sym_class cl -> walk (class_scope t cl) rest ~first:false
          | Scope.Sym_typedef ty -> (
              match Il.class_of_type t.prog ty with
              | Some cl -> walk (class_scope t cl) rest ~first:false
              | None -> None)
          | _ -> None
        in
        match (found, p.targs) with
        | Some (Scope.Sym_template te), Some targs -> (
            match instantiated_symbol t scope te targs ~loc with
            | Some sym -> enter sym
            | None -> None)
        | Some sym, None -> enter sym
        | Some sym, Some _ -> enter sym
        | None, _ -> None)
  in
  match walk start q.Ast.parts ~first:true with
  | Some s -> Some s
  | None ->
      (* compound display-name binding (e.g. "Stack<int>" interned) *)
      let display = Ast.qual_name_to_string q in
      Scope.find t.global display

(* member lookup that also searches base classes *)
and class_member_symbol t (sc : Scope.t) name : Scope.symbol option =
  match sc.Scope.kind with
  | Scope.Sk_class cl -> find_in_class t cl name
  | _ -> None

and find_in_class t (cl : Il.class_id) name : Scope.symbol option =
  let sc = class_scope t cl in
  match Hashtbl.find_opt sc.Scope.syms name with
  | Some s -> Some s
  | None ->
      let c = Il.class_ t.prog cl in
      let rec through = function
        | [] -> None
        | (b : Il.base_spec) :: rest -> (
            match find_in_class t b.ba_class name with
            | Some s -> Some s
            | None -> through rest)
      in
      through c.cl_bases

and instantiated_symbol t scope te_id targs ~loc : Scope.symbol option =
  let te = Il.template t.prog te_id in
  let args = List.map (resolve_targ t scope ~loc) targs in
  match te.te_kind with
  | Tk_class -> (
      match instantiate_class t te_id args ~loc with
      | Some cl -> Some (Scope.Sym_class cl)
      | None -> None)
  | Tk_func -> (
      match instantiate_function t te_id args ~loc with
      | Some ro -> Some (Scope.Sym_routines (ref [ ro ]))
      | None -> None)
  | Tk_memfunc | Tk_statmem | Tk_memclass -> None

and resolve_targ t scope ~loc (a : Ast.template_arg) : rarg =
  match a with
  | Ast.TA_type ty -> Rtype (resolve_type t scope ty ~loc)
  | Ast.TA_expr e -> (
      match const_eval t scope e with
      | Some v -> Rexpr v
      | None -> (
          (* maybe it is actually a type name used in expr position *)
          match e.Ast.e with
          | Ast.IdE q -> (
              match resolve_name t scope q ~loc with
              | Some (Scope.Sym_class cl) -> Rtype (Il.intern_type t.prog (Tclass cl))
              | Some (Scope.Sym_typedef ty) -> Rtype ty
              | Some (Scope.Sym_enum ty) -> Rtype ty
              | _ ->
                  Diag.error t.diags loc "cannot evaluate template argument '%s'"
                    (Ast.expr_to_string e);
                  Rexpr 0L)
          | _ ->
              Diag.error t.diags loc "cannot evaluate template argument '%s'"
                (Ast.expr_to_string e);
              Rexpr 0L))

and resolve_type t scope (ty : Ast.type_expr) ~loc : Il.type_id =
  match ty with
  | Ast.TBuiltin b ->
      let bname, ykind, yikind = builtin_info b in
      Il.builtin_type t.prog ~bname ~ykind ~yikind
  | Ast.TName q -> (
      match resolve_name t scope q ~loc with
      | Some (Scope.Sym_class cl) -> Il.intern_type t.prog (Tclass cl)
      | Some (Scope.Sym_typedef ty) -> ty
      | Some (Scope.Sym_enum ty) -> ty
      | Some (Scope.Sym_template te) -> (
          (* template name without args: allowed if all params have defaults *)
          match instantiated_symbol t scope te [] ~loc with
          | Some (Scope.Sym_class cl) -> Il.intern_type t.prog (Tclass cl)
          | _ ->
              Diag.error t.diags loc "template '%s' used without arguments"
                (Ast.qual_name_to_string q);
              Il.ty_error t.prog)
      | Some _ ->
          Diag.error t.diags loc "'%s' does not name a type" (Ast.qual_name_to_string q);
          Il.ty_error t.prog
      | None ->
          Diag.error t.diags loc "unknown type '%s'" (Ast.qual_name_to_string q);
          Il.ty_error t.prog)
  | Ast.TPtr inner -> Il.intern_type t.prog (Tptr (resolve_type t scope inner ~loc))
  | Ast.TRef inner -> Il.intern_type t.prog (Tref (resolve_type t scope inner ~loc))
  | Ast.TConst inner ->
      let base = resolve_type t scope inner ~loc in
      (match (Il.type_ t.prog base).ty_kind with
       | Tqual qq -> Il.intern_type t.prog (Tqual { qq with q_const = true })
       | _ -> Il.intern_type t.prog (Tqual { base; q_const = true; q_volatile = false }))
  | Ast.TVolatile inner ->
      let base = resolve_type t scope inner ~loc in
      (match (Il.type_ t.prog base).ty_kind with
       | Tqual qq -> Il.intern_type t.prog (Tqual { qq with q_volatile = true })
       | _ -> Il.intern_type t.prog (Tqual { base; q_const = false; q_volatile = true }))
  | Ast.TArray (inner, n) ->
      let n' = Option.map (fun e -> Option.map Int64.to_int (const_eval t scope e)) n in
      Il.intern_type t.prog
        (Tarray (resolve_type t scope inner ~loc, Option.join n'))
  | Ast.TFunc (r, ps, variadic) ->
      let rett = resolve_type t scope r ~loc in
      let params =
        List.map (fun (p : Ast.param) -> (resolve_type t scope p.ptype ~loc, p.pdefault <> None)) ps
      in
      Il.intern_type t.prog
        (Tfunc { rett; params; ellipsis = variadic; cqual = false; exceptions = None })

(* ------------------------------------------------------------------ *)
(* Template argument matching (partial specializations, deduction)     *)
(* ------------------------------------------------------------------ *)

(* Match an AST type pattern (containing tparam names) against an IL type,
   extending [env].  Returns false on mismatch. *)
and match_type t scope ~tparams (pat : Ast.type_expr) (ty : Il.type_id)
    (env : (string * rarg) list ref) : bool =
  let kind = (Il.type_ t.prog ty).ty_kind in
  match pat with
  | Ast.TName { global = false; parts = [ { id; targs = None } ] }
    when List.mem id tparams -> (
      match List.assoc_opt id !env with
      | Some (Rtype ty') -> Il.type_name t.prog ty' = Il.type_name t.prog ty
      | Some (Rexpr _) -> false
      | None ->
          env := (id, Rtype ty) :: !env;
          true)
  | Ast.TConst p -> (
      match kind with
      | Tqual { base; q_const = true; _ } -> match_type t scope ~tparams p base env
      | _ -> false)
  | Ast.TVolatile p -> (
      match kind with
      | Tqual { base; q_volatile = true; _ } -> match_type t scope ~tparams p base env
      | _ -> false)
  | Ast.TPtr p -> (
      match kind with
      | Tptr inner -> match_type t scope ~tparams p inner env
      | _ -> false)
  | Ast.TRef p -> (
      match kind with
      | Tref inner -> match_type t scope ~tparams p inner env
      | _ -> false)
  | Ast.TArray (p, _) -> (
      match kind with
      | Tarray (inner, _) -> match_type t scope ~tparams p inner env
      | _ -> false)
  | Ast.TName { parts; _ } -> (
      (* template-id pattern, e.g. vector<T> *)
      match List.rev parts with
      | { id; targs = Some pargs } :: _ -> (
          match kind with
          | Tclass cl -> (
              match Hashtbl.find_opt t.inst_args cl with
              | Some (te_id, iargs) when (Il.template t.prog te_id).te_name = id ->
                  List.length pargs = List.length iargs
                  && List.for_all2
                       (fun parg iarg ->
                         match (parg, iarg) with
                         | Ast.TA_type p, Rtype ty' ->
                             match_type t scope ~tparams p ty' env
                         | Ast.TA_expr pe, Rexpr v -> (
                             match pe.Ast.e with
                             | Ast.IdE { global = false; parts = [ { id = pid; targs = None } ] }
                               when List.mem pid tparams -> (
                                 match List.assoc_opt pid !env with
                                 | Some (Rexpr v') -> v = v'
                                 | Some (Rtype _) -> false
                                 | None ->
                                     env := (pid, Rexpr v) :: !env;
                                     true)
                             | _ -> const_eval t scope pe = Some v)
                         | _ -> false)
                       pargs iargs
              | _ -> false)
          | _ -> false)
      | _ ->
          (* plain named type: must resolve to exactly [ty] *)
          let resolved = resolve_type t scope pat ~loc:Srcloc.dummy in
          Il.type_name t.prog resolved = Il.type_name t.prog ty)
  | Ast.TBuiltin b ->
      let bname, _, _ = builtin_info b in
      (match kind with
       | Tbuiltin { bname = n; _ } -> String.equal n bname
       | _ -> false)
  | Ast.TFunc _ -> false

(* ------------------------------------------------------------------ *)
(* Template instantiation                                              *)
(* ------------------------------------------------------------------ *)

and subst_env_of t ~(tparams : Ast.tparam list) (args : rarg list) ~scope ~loc :
    Subst.env option =
  (* pair parameters with args, applying defaults *)
  let rec go params args env =
    match (params, args) with
    | [], [] -> Some (List.rev env)
    | [], _ :: _ ->
        Diag.error t.diags loc "too many template arguments";
        None
    | p :: ps, a :: as_ ->
        let name =
          match p with
          | Ast.TP_type (n, _) | Ast.TP_nontype (_, n, _) | Ast.TP_template n -> n
        in
        let ast_arg =
          match a with
          | Rtype ty -> Ast.TA_type (ast_of_type t ty)
          | Rexpr v -> Ast.TA_expr { Ast.e = Ast.IntE v; eloc = loc }
        in
        go ps as_ ((name, ast_arg) :: env)
    | p :: ps, [] -> (
        (* use default *)
        match p with
        | Ast.TP_type (n, Some d) ->
            let d' = Subst.subst_type (List.rev env) d in
            let ty = resolve_type t scope d' ~loc in
            go ps [] ((n, Ast.TA_type (ast_of_type t ty)) :: env)
        | Ast.TP_nontype (_, n, Some d) -> (
            let d' = Subst.subst_expr (List.rev env) d in
            match const_eval t scope d' with
            | Some v -> go ps [] ((n, Ast.TA_expr { Ast.e = Ast.IntE v; eloc = loc }) :: env)
            | None ->
                Diag.error t.diags loc "cannot evaluate default template argument";
                None)
        | Ast.TP_type (n, None) | Ast.TP_nontype (_, n, None) | Ast.TP_template n ->
            Diag.error t.diags loc "missing template argument for parameter '%s'" n;
            None)
  in
  go tparams args []

(* normalize args: extend with defaults so the cache key is canonical *)
and normalize_args t te (args : rarg list) ~scope ~loc : rarg list =
  let nparams = List.length te.te_params in
  if List.length args >= nparams then args
  else
    match subst_env_of t ~tparams:te.te_params args ~scope ~loc with
    | None -> args
    | Some env ->
        List.map
          (fun (_, a) ->
            match a with
            | Ast.TA_type ty -> Rtype (resolve_type t scope ty ~loc)
            | Ast.TA_expr e -> (
                match const_eval t scope e with
                | Some v -> Rexpr v
                | None -> Rexpr 0L))
          env

and instantiate_class t (te_id : Il.template_id) (args : rarg list) ~loc :
    Il.class_id option =
  match Limits.enter_instantiation t.limits with
  | exception (Limits.Exceeded _ as e) ->
      report_limit t ~loc e;
      None
  | () ->
      Fun.protect
        ~finally:(fun () -> Limits.exit_instantiation t.limits)
        (fun () -> instantiate_class_body t te_id args ~loc)

and instantiate_class_body t (te_id : Il.template_id) (args : rarg list) ~loc :
    Il.class_id option =
  let te = Il.template t.prog te_id in
  let def_scope =
    match Hashtbl.find_opt t.template_scopes te_id with
    | Some s -> s
    | None -> t.global
  in
  let args = normalize_args t te args ~scope:def_scope ~loc in
  let key = rargs_key t args in
  match List.assoc_opt key te.te_instances with
  | Some (Inst_class cl) -> Some cl
  | Some (Inst_routine _) -> None
  | None ->
      if not t.opts.instantiate_used then begin
        t.deferred_requests <- (te.te_name ^ "<" ^ key ^ ">") :: t.deferred_requests;
        None
      end
      else begin
        let inst () =
        t.all_instantiations <- (te_id, key) :: t.all_instantiations;
        (* choose pattern: explicit specialization > partial spec > primary *)
        let chosen =
          let exact =
            List.find_opt
              (fun (tparams, targs, _) ->
                tparams = []
                && List.length targs = List.length args
                && List.for_all2
                     (fun targ arg ->
                       match (targ, arg) with
                       | Ast.TA_type pt, Rtype ty ->
                           let r = resolve_type t def_scope pt ~loc in
                           Il.type_name t.prog r = Il.type_name t.prog ty
                       | Ast.TA_expr pe, Rexpr v -> const_eval t def_scope pe = Some v
                       | _ -> false)
                     targs args)
              te.te_specializations
          in
          match exact with
          | Some (_, _, d) -> Some (`Spec, [], d)
          | None ->
              (* partial specializations *)
              let partial =
                List.filter_map
                  (fun (tparams, targs, d) ->
                    if tparams = [] || List.length targs <> List.length args then None
                    else begin
                      let names =
                        List.map
                          (function
                            | Ast.TP_type (n, _) | Ast.TP_nontype (_, n, _)
                            | Ast.TP_template n -> n)
                          tparams
                      in
                      let env = ref [] in
                      let ok =
                        List.for_all2
                          (fun targ arg ->
                            match (targ, arg) with
                            | Ast.TA_type pt, Rtype ty ->
                                match_type t def_scope ~tparams:names pt ty env
                            | Ast.TA_expr pe, Rexpr v -> (
                                match pe.Ast.e with
                                | Ast.IdE { global = false; parts = [ { id; targs = None } ] }
                                  when List.mem id names ->
                                    env := (id, Rexpr v) :: !env;
                                    true
                                | _ -> const_eval t def_scope pe = Some v)
                            | _ -> false)
                          targs args
                      in
                      if ok then
                        let senv =
                          List.map
                            (fun (n, a) ->
                              ( n,
                                match a with
                                | Rtype ty -> Ast.TA_type (ast_of_type t ty)
                                | Rexpr v ->
                                    Ast.TA_expr { Ast.e = Ast.IntE v; eloc = loc } ))
                            !env
                        in
                        Some (`Partial, senv, d)
                      else None
                    end)
                  te.te_specializations
              in
              (match partial with
               | choice :: _ -> Some choice
               | [] -> (
                   match te.te_pattern with
                   | Some d -> (
                       match subst_env_of t ~tparams:te.te_params args ~scope:def_scope ~loc with
                       | Some env -> Some (`Primary, env, d)
                       | None -> None)
                   | None ->
                       Diag.error t.diags loc "template '%s' has no definition" te.te_name;
                       None))
        in
        match chosen with
        | None -> None
        | Some (origin, env, pattern_decl) -> (
            match pattern_decl.Ast.d with
            | Ast.DClass cd ->
                let cd' = Subst.subst_class env cd in
                let display = te.te_name ^ "<" ^ key ^ ">" in
                (* Pre-create and register the instance before elaborating its
                   members, so self-referential patterns (e.g. a member of
                   type [Stack<T>*]) resolve to this very instance instead of
                   recursing. *)
                let c =
                  Il.add_class t.prog ~name:display
                    ~kind:(match cd.Ast.c_key with
                           | Ast.Class_key -> Ckind_class
                           | Ast.Struct_key -> Ckind_struct
                           | Ast.Union_key -> Ckind_union)
                    ~loc:cd'.Ast.c_header.Srcloc.start
                    ~parent:(Scope.parent_of def_scope) ~access:Acc_na
                in
                (* ctempl: paper mode maps instantiations back to their template
                   via the template list; specializations get mapped only in
                   "fixed" mode *)
                (match origin with
                 | `Primary -> c.cl_template <- Some te_id
                 | `Spec | `Partial ->
                     c.cl_template <-
                       (if t.opts.map_specializations then Some te_id else None);
                     c.cl_spec_of <- Some te_id);
                Hashtbl.replace t.inst_args c.cl_id (te_id, args);
                te.te_instances <- (key, Inst_class c.cl_id) :: te.te_instances;
                (* bind the display name so ast_of_type round-trips *)
                Scope.bind t.global display (Scope.Sym_class c.cl_id);
                let cl =
                  elab_class t def_scope cd' ~name_override:display ~access:Acc_na
                    ~bind_name:false ~in_template_instance:true ~into:c ()
                in
                (* attach out-of-line member definitions (push etc.) *)
                attach_member_defs t te_id cl env;
                Some cl
            | _ ->
                Diag.error t.diags loc "'%s' is not a class template" te.te_name;
                None)
        in
        (* per-instantiation span, named — the paper's template focus *)
        if Trace.on () then
          Trace.span ~cat:"sema"
            ~args:[ ("name", Trace.Str (te.te_name ^ "<" ^ key ^ ">")) ]
            "sema.instantiate" inst
        else inst ()
      end

(* Register the out-of-line member definitions of a class template against
   the member declarations of a fresh instance. *)
and attach_member_defs t te_id cl env =
  match Hashtbl.find_opt t.member_defs te_id with
  | None -> ()
  | Some defs ->
      List.iter (fun (name, tparams, fd, mem_te) ->
          ignore tparams;
          attach_one_member_def t cl env name fd mem_te)
        !defs

and attach_one_member_def t cl env name (fd : Ast.func_def) mem_te =
  let c = Il.class_ t.prog cl in
  let candidates = Il.find_member_funcs t.prog c name in
  (* pick the declaration with the same arity *)
  let arity = List.length fd.Ast.f_params in
  match
    List.find_opt (fun (r : Il.routine_entity) -> List.length r.ro_params = arity) candidates
  with
  | None -> ()  (* declaration not in class — ill-formed; ignore *)
  | Some r ->
      if not (Hashtbl.mem t.lazy_bodies r.ro_id) && not r.ro_defined then begin
        let fd' = Subst.subst_func env fd in
        Hashtbl.replace t.lazy_bodies r.ro_id
          { pb_func = fd'; pb_scope = class_scope t cl; pb_this = Some cl;
            pb_rtempl = Some mem_te }
      end

and instantiate_function t (te_id : Il.template_id) (args : rarg list) ~loc :
    Il.routine_id option =
  match Limits.enter_instantiation t.limits with
  | exception (Limits.Exceeded _ as e) ->
      report_limit t ~loc e;
      None
  | () ->
      Fun.protect
        ~finally:(fun () -> Limits.exit_instantiation t.limits)
        (fun () -> instantiate_function_body t te_id args ~loc)

and instantiate_function_body t (te_id : Il.template_id) (args : rarg list) ~loc :
    Il.routine_id option =
  let te = Il.template t.prog te_id in
  let def_scope =
    match Hashtbl.find_opt t.template_scopes te_id with
    | Some s -> s
    | None -> t.global
  in
  let args = normalize_args t te args ~scope:def_scope ~loc in
  let key = rargs_key t args in
  match List.assoc_opt key te.te_instances with
  | Some (Inst_routine ro) -> Some ro
  | Some (Inst_class _) -> None
  | None ->
      if not t.opts.instantiate_used then begin
        t.deferred_requests <- (te.te_name ^ "<" ^ key ^ ">") :: t.deferred_requests;
        None
      end
      else begin
        let inst () =
        t.all_instantiations <- (te_id, key) :: t.all_instantiations;
        match te.te_pattern with
        | Some { Ast.d = Ast.DFunction fd; _ } -> (
            match subst_env_of t ~tparams:te.te_params args ~scope:def_scope ~loc with
            | None -> None
            | Some env ->
                let fd' = Subst.subst_func env fd in
                let ro =
                  elab_function_decl t def_scope fd' ~access:Acc_na ~bind_name:false
                in
                let r = Il.routine t.prog ro in
                r.ro_template <- Some te_id;
                te.te_instances <- (key, Inst_routine ro) :: te.te_instances;
                (match fd'.Ast.f_body with
                 | Some _ ->
                     Queue.add
                       (ro,
                        { pb_func = fd'; pb_scope = def_scope; pb_this = None;
                          pb_rtempl = Some te_id })
                       t.body_queue
                 | None -> ());
                Some ro)
        | _ ->
            Diag.error t.diags loc "'%s' is not a function template" te.te_name;
            None
        in
        if Trace.on () then
          Trace.span ~cat:"sema"
            ~args:[ ("name", Trace.Str (te.te_name ^ "<" ^ key ^ ">")) ]
            "sema.instantiate" inst
        else inst ()
      end

(* ------------------------------------------------------------------ *)
(* Class elaboration                                                   *)
(* ------------------------------------------------------------------ *)

and elab_class_real t scope (cd : Ast.class_def) ~name_override ~access
    ~bind_name ~in_template_instance ~into : Il.class_id =
  let name =
    match name_override with
    | Some n -> n
    | None -> (
        match cd.Ast.c_name with
        | Some p -> p.Ast.id
        | None -> "<anonymous>")
  in
  let kind =
    match cd.Ast.c_key with
    | Ast.Class_key -> Ckind_class
    | Ast.Struct_key -> Ckind_struct
    | Ast.Union_key -> Ckind_union
  in
  let loc = cd.Ast.c_header.Srcloc.start in
  (* forward declaration or reopening: reuse existing incomplete class *)
  let existing =
    match into with
    | Some c -> Some c
    | None ->
        if bind_name then
          match Scope.find_local scope name with
          | Some (Scope.Sym_class cl) -> Some (Il.class_ t.prog cl)
          | _ -> None
        else None
  in
  let c =
    match existing with
    | Some c -> c
    | None ->
        let c =
          Il.add_class t.prog ~name ~kind ~loc ~parent:(Scope.parent_of scope) ~access
        in
        if bind_name then Scope.bind scope name (Scope.Sym_class c.cl_id);
        (match Scope.parent_of scope with
         | Pnamespace ns ->
             let n = Il.namespace t.prog ns in
             n.na_members <- Rclass c.cl_id :: n.na_members
         | _ -> ());
        c
  in
  match cd.Ast.c_body with
  | None -> c.cl_id  (* forward declaration *)
  | Some body_range ->
      if c.cl_complete then c.cl_id  (* redefinition; keep first *)
      else begin
        c.cl_loc <- (match cd.Ast.c_name with
                     | Some _ -> cd.Ast.c_header.Srcloc.stop
                     | None -> loc);
        (* header position: use name location as the class loc, per Fig. 3 *)
        (match cd.Ast.c_name with
         | Some _ ->
             (* the class name is the token after the key; approximate with
                header start shifted past the keyword *)
             c.cl_loc <- { loc with Srcloc.col = loc.Srcloc.col + 6 }
         | None -> ());
        c.cl_extent <-
          Srcloc.extent ~header:cd.Ast.c_header ~body:body_range ();
        let csc = Scope.create ~parent:scope (Scope.Sk_class c.cl_id) in
        Hashtbl.replace t.class_scopes c.cl_id csc;
        (* the class's own name refers to itself inside the body *)
        Scope.bind csc name (Scope.Sym_class c.cl_id);
        (match cd.Ast.c_name with
         | Some { id; _ } when id <> name -> Scope.bind csc id (Scope.Sym_class c.cl_id)
         | _ -> ());
        (* bases *)
        let bases =
          List.filter_map
            (fun (b : Ast.base_spec) ->
              match resolve_name t scope b.b_name ~loc:b.b_loc with
              | Some (Scope.Sym_class bcl) ->
                  let default_acc =
                    if kind = Ckind_class then Priv else Pub
                  in
                  Some
                    { ba_access =
                        (match b.b_access with
                         | Some a -> access_of_ast a
                         | None -> default_acc);
                      ba_virtual = b.b_virtual;
                      ba_class = bcl }
              | _ ->
                  Diag.error t.diags b.b_loc "unknown base class '%s'"
                    (Ast.qual_name_to_string b.b_name);
                  None)
            cd.Ast.c_bases
        in
        c.cl_bases <- bases;
        List.iter
          (fun (b : Il.base_spec) ->
            let bc = Il.class_ t.prog b.ba_class in
            bc.cl_derived <- bc.cl_derived @ [ c.cl_id ])
          bases;
        (* members *)
        let current_access = ref (if kind = Ckind_class then Priv else Pub) in
        List.iter
          (fun (m : Ast.decl) -> elab_member t csc c m current_access ~in_template_instance)
          cd.Ast.c_members;
        c.cl_funcs <- List.rev c.cl_funcs;
        c.cl_members <- List.rev c.cl_members;
        c.cl_complete <- true;
        c.cl_id
      end

and elab_member t csc (c : Il.class_entity) (m : Ast.decl) current_access
    ~in_template_instance : unit =
  match m.Ast.d with
  | Ast.DAccess a -> current_access := access_of_ast a
  | Ast.DEmpty -> ()
  | Ast.DVar vd ->
      let ty = resolve_type t csc vd.Ast.v_type ~loc:vd.Ast.v_loc in
      let dm =
        { dm_name = vd.Ast.v_name; dm_loc = vd.Ast.v_loc; dm_access = !current_access;
          dm_type = ty; dm_static = vd.Ast.v_storage.Ast.st_static;
          dm_mutable = vd.Ast.v_storage.Ast.st_mutable }
      in
      c.cl_members <- dm :: c.cl_members;
      Scope.bind csc vd.Ast.v_name
        (Scope.Sym_var { vs_name = vd.Ast.v_name; vs_type = ty; vs_global = false })
  | Ast.DFunction fd ->
      let ro =
        elab_member_function t csc c fd ~access:!current_access ~in_template_instance
      in
      ignore ro
  | Ast.DClass cd ->
      ignore
        (elab_class t csc cd ~access:!current_access ~bind_name:true
           ~in_template_instance ())
  | Ast.DTypedef (ty, n) ->
      let id = resolve_type t csc ty ~loc:m.Ast.dloc in
      let te = Il.type_ t.prog id in
      if not (List.mem n te.ty_typedef_names) then
        te.ty_typedef_names <- te.ty_typedef_names @ [ n ];
      Scope.bind csc n (Scope.Sym_typedef id)
  | Ast.DEnum (name, items) -> elab_enum t csc ~parent:(Pclass c.cl_id) name items m.Ast.dloc
  | Ast.DTemplate _ -> elab_template t csc m ~access:!current_access
  | Ast.DFriend inner -> (
      match inner.Ast.d with
      | Ast.DClass { c_name = Some { id; _ }; _ } -> (
          match Scope.find csc id with
          | Some (Scope.Sym_class fc) -> c.cl_friends <- Friend_class fc :: c.cl_friends
          | _ -> ())
      | Ast.DFunction fd -> (
          let fname = (Ast.last_part fd.Ast.f_name).Ast.id in
          match Scope.find csc fname with
          | Some (Scope.Sym_routines rs) -> (
              match !rs with
              | r0 :: _ -> c.cl_friends <- Friend_routine r0 :: c.cl_friends
              | [] -> ())
          | _ -> ())
      | _ -> ())
  | Ast.DUsing (q, is_ns) -> elab_using t csc q is_ns m.Ast.dloc
  | Ast.DNamespace _ | Ast.DExplicitInst _ ->
      Diag.error t.diags m.Ast.dloc "declaration not allowed in class body"

and elab_enum t scope ~parent name items loc : unit =
  let ename = match name with Some n -> n | None -> "<anonymous enum>" in
  let constants =
    let next = ref 0L in
    List.map
      (fun (n, e, l) ->
        let v =
          match e with
          | Some e -> Option.value ~default:!next (const_eval t scope e)
          | None -> !next
        in
        next := Int64.add v 1L;
        (n, v, l))
      items
  in
  let ty =
    Il.intern_type ~loc ~parent t.prog (Tenum { ename; eparent = parent; constants })
  in
  (match name with Some n -> Scope.bind scope n (Scope.Sym_enum ty) | None -> ());
  List.iter (fun (n, v, _) -> Scope.bind scope n (Scope.Sym_enum_const (ty, v))) constants

and routine_signature t scope (fd : Ast.func_def) ~loc : Il.type_id * Il.param_info list =
  let rett =
    match fd.Ast.f_ret with
    | Some ty -> resolve_type t scope ty ~loc
    | None -> Il.ty_void t.prog
  in
  let params =
    List.map
      (fun (p : Ast.param) ->
        { pi_name = p.pname;
          pi_type = resolve_type t scope p.ptype ~loc:p.ploc;
          pi_has_default = p.pdefault <> None;
          pi_default = p.pdefault;
          pi_loc = p.ploc })
      fd.Ast.f_params
  in
  let exceptions =
    Option.map (List.map (fun ty -> resolve_type t scope ty ~loc)) fd.Ast.f_throw
  in
  let sig_ =
    Il.intern_type t.prog
      (Tfunc
         { rett;
           params = List.map (fun pi -> (pi.pi_type, pi.pi_has_default)) params;
           ellipsis = fd.Ast.f_variadic;
           cqual = fd.Ast.f_quals.Ast.q_const;
           exceptions })
  in
  (sig_, params)

(* a member function declaration (and possibly inline definition) *)
and elab_member_function t csc (c : Il.class_entity) (fd : Ast.func_def)
    ~access ~in_template_instance : Il.routine_id =
  let name = (Ast.last_part fd.Ast.f_name).Ast.id in
  let loc = fd.Ast.f_header.Srcloc.start in
  let sig_, params = routine_signature t csc fd ~loc in
  (* overload: reuse existing declaration with same signature *)
  let existing =
    List.find_opt
      (fun rid ->
        let r = Il.routine t.prog rid in
        String.equal r.ro_name name && r.ro_sig = sig_)
      c.cl_funcs
  in
  let r =
    match existing with
    | Some rid -> Il.routine t.prog rid
    | None ->
        let r =
          Il.add_routine t.prog ~name ~loc ~parent:(Pclass c.cl_id) ~access ~sig_
        in
        c.cl_funcs <- r.ro_id :: c.cl_funcs;
        (* constructors and destructors are not found by ordinary name
           lookup; binding them would shadow the class's own name *)
        (match fd.Ast.f_kind with
         | Ast.Fk_ctor | Ast.Fk_dtor -> ()
         | Ast.Fk_normal | Ast.Fk_conversion | Ast.Fk_operator _ ->
             ignore (Scope.bind_routine csc name r.ro_id));
        r
  in
  r.ro_params <- params;
  r.ro_kind <-
    (match fd.Ast.f_kind with
     | Ast.Fk_normal -> Rk_normal
     | Ast.Fk_ctor -> Rk_ctor
     | Ast.Fk_dtor -> Rk_dtor
     | Ast.Fk_conversion -> Rk_conversion
     | Ast.Fk_operator _ -> Rk_operator);
  r.ro_static <- fd.Ast.f_quals.Ast.q_static;
  r.ro_inline <- fd.Ast.f_quals.Ast.q_inline;
  r.ro_const <- fd.Ast.f_quals.Ast.q_const;
  r.ro_store <- (if r.ro_static then "static" else "NA");
  (* virtuality: declared, or overriding a virtual base member *)
  let overrides_virtual =
    List.exists
      (fun (b : Il.base_spec) ->
        List.exists
          (fun (br : Il.routine_entity) -> br.ro_virt <> Virt_no)
          (Il.find_member_funcs t.prog (Il.class_ t.prog b.ba_class) name))
      c.cl_bases
  in
  r.ro_virt <-
    (if fd.Ast.f_quals.Ast.q_pure then Virt_pure
     else if fd.Ast.f_quals.Ast.q_virtual || overrides_virtual then Virt_virtual
     else Virt_no);
  r.ro_extent <-
    Srcloc.extent ~header:fd.Ast.f_header ?body:fd.Ast.f_body_range ();
  (match fd.Ast.f_body with
   | Some _ ->
       let pb =
         { pb_func = fd; pb_scope = csc; pb_this = Some c.cl_id;
           pb_rtempl =
             (if in_template_instance then
                (* inline member of a class template: credit the class template *)
                (Il.class_ t.prog c.cl_id).cl_template
              else None) }
       in
       if in_template_instance then
         (* used mode: body instantiated only when the member is used *)
         Hashtbl.replace t.lazy_bodies r.ro_id pb
       else Queue.add (r.ro_id, pb) t.body_queue
   | None -> ());
  r.ro_id

(* a namespace-scope function declaration/definition (possibly out-of-line
   member definition) *)
and elab_function_decl t scope (fd : Ast.func_def) ~access ~bind_name :
    Il.routine_id =
  let loc = fd.Ast.f_header.Srcloc.start in
  match fd.Ast.f_name.Ast.parts with
  | [ _ ] | [] ->
      (* plain function at this scope *)
      let name = (Ast.last_part fd.Ast.f_name).Ast.id in
      let sig_, params = routine_signature t scope fd ~loc in
      let existing =
        match Scope.find_local scope name with
        | Some (Scope.Sym_routines rs) ->
            List.find_opt
              (fun rid -> (Il.routine t.prog rid).ro_sig = sig_)
              !rs
        | _ -> None
      in
      let r =
        match existing with
        | Some rid -> Il.routine t.prog rid
        | None ->
            let r =
              Il.add_routine t.prog ~name ~loc ~parent:(Scope.parent_of scope)
                ~access ~sig_
            in
            if bind_name then ignore (Scope.bind_routine scope name r.ro_id);
            (match Scope.parent_of scope with
             | Pnamespace ns ->
                 let n = Il.namespace t.prog ns in
                 n.na_members <- Rroutine r.ro_id :: n.na_members
             | _ -> ());
            r
      in
      r.ro_params <- params;
      r.ro_kind <-
        (match fd.Ast.f_kind with
         | Ast.Fk_operator _ -> Rk_operator
         | Ast.Fk_ctor -> Rk_ctor
         | Ast.Fk_dtor -> Rk_dtor
         | Ast.Fk_conversion -> Rk_conversion
         | Ast.Fk_normal -> Rk_normal);
      r.ro_inline <- fd.Ast.f_quals.Ast.q_inline;
      r.ro_store <-
        (if fd.Ast.f_quals.Ast.q_static then "static"
         else if fd.Ast.f_quals.Ast.q_extern then "extern"
         else "NA");
      r.ro_extent <- Srcloc.extent ~header:fd.Ast.f_header ?body:fd.Ast.f_body_range ();
      (match fd.Ast.f_body with
       | Some _ ->
           Queue.add
             (r.ro_id, { pb_func = fd; pb_scope = scope; pb_this = None; pb_rtempl = None })
             t.body_queue
       | None -> ());
      r.ro_id
  | parts ->
      (* qualified: out-of-line member definition *)
      let front = List.filteri (fun i _ -> i < List.length parts - 1) parts in
      let last = Ast.last_part fd.Ast.f_name in
      let owner = { fd.Ast.f_name with Ast.parts = front } in
      (match resolve_name t scope owner ~loc with
       | Some (Scope.Sym_class cl) -> (
           let c = Il.class_ t.prog cl in
           let csc = class_scope t cl in
           let sig_, params = routine_signature t csc fd ~loc in
           let candidates = Il.find_member_funcs t.prog c last.Ast.id in
           let matching =
             List.find_opt
               (fun (r : Il.routine_entity) ->
                 r.ro_sig = sig_ || List.length r.ro_params = List.length params)
               candidates
           in
           match matching with
           | Some r ->
               r.ro_extent <-
                 Srcloc.extent ~header:fd.Ast.f_header ?body:fd.Ast.f_body_range ();
               r.ro_loc <- loc;
               (match fd.Ast.f_body with
                | Some _ ->
                    Queue.add
                      (r.ro_id,
                       { pb_func = fd; pb_scope = csc; pb_this = Some cl; pb_rtempl = None })
                      t.body_queue
                | None -> ());
               r.ro_id
           | None ->
               Diag.error t.diags loc "no declaration of '%s' in class '%s'" last.Ast.id
                 c.cl_name;
               let r =
                 Il.add_routine t.prog ~name:last.Ast.id ~loc ~parent:(Pclass cl)
                   ~access:Pub ~sig_
               in
               r.ro_params <- params;
               r.ro_id)
       | Some (Scope.Sym_namespace ns_scope) ->
           elab_function_decl t ns_scope
             { fd with Ast.f_name = { Ast.global = false; parts = [ last ] } }
             ~access ~bind_name:true
       | _ ->
           Diag.error t.diags loc "cannot resolve '%s'"
             (Ast.qual_name_to_string owner);
           let sig_, params = routine_signature t scope fd ~loc in
           let r =
             Il.add_routine t.prog ~name:last.Ast.id ~loc
               ~parent:(Scope.parent_of scope) ~access ~sig_
           in
           r.ro_params <- params;
           r.ro_id)

and elab_using t scope (q : Ast.qual_name) is_ns loc : unit =
  match resolve_name t scope q ~loc with
  | Some (Scope.Sym_namespace target) when is_ns -> Scope.add_using scope target
  | Some sym when not is_ns ->
      Scope.bind scope (Ast.last_part q).Ast.id sym
  | _ ->
      Diag.warn t.diags loc "cannot resolve using%s '%s'"
        (if is_ns then " namespace" else "")
        (Ast.qual_name_to_string q)

(* ------------------------------------------------------------------ *)
(* Template declarations                                               *)
(* ------------------------------------------------------------------ *)

and elab_template t scope (d : Ast.decl) ~access : unit =
  match d.Ast.d with
  | Ast.DTemplate (tparams, inner, text) -> (
      match inner.Ast.d with
      | Ast.DClass cd when tparams <> [] && not (has_spec_args cd) ->
          (* primary class template *)
          let name = (match cd.Ast.c_name with Some p -> p.Ast.id | None -> "<anon>") in
          let te =
            Il.add_template t.prog ~name ~loc:(name_loc_of_class cd)
              ~parent:(Scope.parent_of scope) ~access ~kind:Tk_class
          in
          te.te_text <- text;
          te.te_params <- tparams;
          te.te_pattern <- Some inner;
          te.te_extent <-
            Srcloc.extent ~header:(Srcloc.range d.Ast.dloc cd.Ast.c_header.Srcloc.stop)
              ?body:cd.Ast.c_body ();
          Hashtbl.replace t.template_scopes te.te_id scope;
          Scope.bind scope name (Scope.Sym_template te.te_id);
          (match Scope.parent_of scope with
           | Pnamespace ns ->
               let n = Il.namespace t.prog ns in
               n.na_members <- Rtemplate te.te_id :: n.na_members
           | _ -> ())
      | Ast.DClass cd -> (
          (* specialization (explicit if tparams = [], else partial) *)
          match cd.Ast.c_name with
          | Some { id; targs = Some targs } -> (
              match Scope.find scope id with
              | Some (Scope.Sym_template te_id) ->
                  let te = Il.template t.prog te_id in
                  te.te_specializations <-
                    te.te_specializations @ [ (tparams, targs, inner) ]
              | _ ->
                  Diag.error t.diags d.Ast.dloc
                    "specialization of unknown template '%s'" id)
          | _ ->
              Diag.error t.diags d.Ast.dloc "malformed template specialization")
      | Ast.DFunction fd -> elab_function_template t scope tparams fd text d.Ast.dloc ~access
      | Ast.DVar vd -> elab_statmem_template t scope tparams vd text d.Ast.dloc ~access
      | Ast.DTemplate _ ->
          (* member template of a class template: tolerated but not elaborated
             until used; currently skipped with a warning *)
          Diag.warn t.diags d.Ast.dloc "nested template declarations are not analyzed"
      | Ast.DTypedef _ | Ast.DEnum _ | Ast.DNamespace _ | Ast.DUsing _
      | Ast.DAccess _ | Ast.DFriend _ | Ast.DExplicitInst _ | Ast.DEmpty ->
          Diag.warn t.diags d.Ast.dloc "unsupported templated declaration")
  | _ -> invalid_arg "elab_template"

and has_spec_args (cd : Ast.class_def) =
  match cd.Ast.c_name with Some { targs = Some _; _ } -> true | _ -> false

and name_loc_of_class (cd : Ast.class_def) =
  (* approximation: the class-key location; Figure 3 points tloc at the name *)
  cd.Ast.c_header.Srcloc.start

and elab_function_template t scope tparams (fd : Ast.func_def) text dloc ~access : unit =
  let last = Ast.last_part fd.Ast.f_name in
  match fd.Ast.f_name.Ast.parts with
  | [ _ ] ->
      (* function template at namespace scope (tkind func), or a member
         template when [scope] is a class scope (tkind memfunc) *)
      let kind =
        match scope.Scope.kind with
        | Scope.Sk_class _ ->
            if fd.Ast.f_quals.Ast.q_static then Tk_statmem else Tk_memfunc
        | _ -> Tk_func
      in
      let te =
        Il.add_template t.prog ~name:last.Ast.id ~loc:fd.Ast.f_header.Srcloc.start
          ~parent:(Scope.parent_of scope) ~access ~kind
      in
      te.te_text <- text;
      te.te_params <- tparams;
      te.te_pattern <- Some { Ast.d = Ast.DFunction fd; dloc };
      te.te_extent <- Srcloc.extent ~header:fd.Ast.f_header ?body:fd.Ast.f_body_range ();
      Hashtbl.replace t.template_scopes te.te_id scope;
      Scope.bind scope last.Ast.id (Scope.Sym_template te.te_id);
      (match Scope.parent_of scope with
       | Pnamespace ns ->
           let n = Il.namespace t.prog ns in
           n.na_members <- Rtemplate te.te_id :: n.na_members
       | _ -> ())
  | parts when List.length parts > 1 -> (
      (* out-of-line member of a class template:
         template <class T> void Stack<T>::push(...) *)
      let owner_part = List.nth parts (List.length parts - 2) in
      match Scope.find scope owner_part.Ast.id with
      | Some (Scope.Sym_template cls_te_id) ->
          let kind = if fd.Ast.f_quals.Ast.q_static then Tk_statmem else Tk_memfunc in
          let te =
            Il.add_template t.prog ~name:last.Ast.id
              ~loc:fd.Ast.f_header.Srcloc.start
              ~parent:(Scope.parent_of scope) ~access ~kind
          in
          te.te_text <- text;
          te.te_params <- tparams;
          te.te_pattern <- Some { Ast.d = Ast.DFunction fd; dloc };
          te.te_extent <-
            Srcloc.extent ~header:fd.Ast.f_header ?body:fd.Ast.f_body_range ();
          Hashtbl.replace t.template_scopes te.te_id scope;
          let fd_local =
            { fd with Ast.f_name = { Ast.global = false; parts = [ last ] } }
          in
          let defs =
            match Hashtbl.find_opt t.member_defs cls_te_id with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace t.member_defs cls_te_id r;
                r
          in
          defs := !defs @ [ (last.Ast.id, tparams, fd_local, te.te_id) ];
          (* back-fill existing instances (definition after use) *)
          let cls_te = Il.template t.prog cls_te_id in
          List.iter
            (fun (_, inst) ->
              match inst with
              | Inst_class cl -> (
                  match Hashtbl.find_opt t.inst_args cl with
                  | Some (_, args) -> (
                      match
                        subst_env_of t ~tparams:cls_te.te_params args ~scope ~loc:dloc
                      with
                      | Some env ->
                          attach_one_member_def t cl env last.Ast.id fd_local te.te_id
                      | None -> ())
                  | None -> ())
              | Inst_routine _ -> ())
            cls_te.te_instances
      | _ ->
          Diag.error t.diags dloc "out-of-line member of unknown template '%s'"
            owner_part.Ast.id)
  | _ -> Diag.error t.diags dloc "malformed function template"

and elab_statmem_template t scope tparams (vd : Ast.var_decl) text dloc ~access : unit =
  (* template <class T> int Foo<T>::count = 0; *)
  ignore tparams;
  let te =
    Il.add_template t.prog ~name:vd.Ast.v_name ~loc:vd.Ast.v_loc
      ~parent:(Scope.parent_of scope) ~access ~kind:Tk_statmem
  in
  te.te_text <- text;
  te.te_pattern <- Some { Ast.d = Ast.DVar vd; dloc };
  Hashtbl.replace t.template_scopes te.te_id scope

(* recursive knot for elab_class *)
and elab_class t scope cd ?name_override ?into ~access ~bind_name
    ~in_template_instance () =
  elab_class_real t scope cd ~name_override ~access ~bind_name
    ~in_template_instance ~into

(* ------------------------------------------------------------------ *)
(* Body elaboration: expression typing, call resolution, call edges    *)
(* ------------------------------------------------------------------ *)

and record_call t (benv : benv) (callee : Il.routine_entity) ~loc : unit =
  benv.be_routine.ro_calls <-
    { cs_callee = callee.ro_id; cs_virtual = callee.ro_virt <> Virt_no; cs_loc = loc }
    :: benv.be_routine.ro_calls;
  request_body t callee.ro_id

and request_body t ro_id : unit =
  match Hashtbl.find_opt t.lazy_bodies ro_id with
  | Some pb ->
      Hashtbl.remove t.lazy_bodies ro_id;
      Queue.add (ro_id, pb) t.body_queue
  | None -> ()

(* pick the best overload for the given argument types *)
and pick_overload t (candidates : Il.routine_entity list) (arg_tys : Il.type_id list) :
    Il.routine_entity option =
  let nargs = List.length arg_tys in
  let viable =
    List.filter
      (fun (r : Il.routine_entity) ->
        let nparams = List.length r.ro_params in
        let required =
          List.length (List.filter (fun p -> not p.pi_has_default) r.ro_params)
        in
        let (ellipsis : bool) =
          match (Il.type_ t.prog r.ro_sig).ty_kind with
          | Tfunc { ellipsis; _ } -> ellipsis
          | _ -> false
        in
        nargs >= required && (nargs <= nparams || ellipsis))
      candidates
  in
  let score (r : Il.routine_entity) =
    let rec go ps args acc =
      match (ps, args) with
      | _, [] -> acc
      | [], _ -> acc  (* extra args matched against ellipsis *)
      | (p : Il.param_info) :: ps', a :: args' ->
          let pa = Il.strip_qual_ref t.prog p.pi_type in
          let aa = Il.strip_qual_ref t.prog a in
          let s =
            if pa = aa then 3
            else
              match ((Il.type_ t.prog pa).ty_kind, (Il.type_ t.prog aa).ty_kind) with
              | Tbuiltin _, Tbuiltin _ -> 2
              | Tclass pc, Tclass ac ->
                  (* derived-to-base *)
                  let rec derives c =
                    c = pc
                    || List.exists
                         (fun (b : Il.base_spec) -> derives b.ba_class)
                         (Il.class_ t.prog c).cl_bases
                  in
                  if derives ac then 2 else 0
              | Tptr _, Tptr _ -> 2
              | Tenum _, Tbuiltin _ | Tbuiltin _, Tenum _ -> 2
              | Terror, _ | _, Terror -> 1
              | _ -> 1
          in
          go ps' args' (acc + s)
    in
    go r.ro_params arg_tys 0
  in
  match viable with
  | [] -> (match candidates with [] -> None | c :: _ -> Some c)
  | _ ->
      let best =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some (r, score r)
            | Some (_, s) when score r > s -> Some (r, score r)
            | _ -> acc)
          None viable
      in
      Option.map fst best

(* implicit default constructor / destructor, created on demand *)
and implicit_member t (cl : Il.class_id) which : Il.routine_entity =
  let key = (cl, which) in
  match Hashtbl.find_opt t.implicit_members key with
  | Some id -> Il.routine t.prog id
  | None ->
      let c = Il.class_ t.prog cl in
      let base_name =
        match String.index_opt c.cl_name '<' with
        | Some i -> String.sub c.cl_name 0 i
        | None -> c.cl_name
      in
      let name = if which = "ctor" then base_name else "~" ^ base_name in
      let sig_ =
        Il.intern_type t.prog
          (Tfunc { rett = Il.ty_void t.prog; params = []; ellipsis = false;
                   cqual = false; exceptions = None })
      in
      let r = Il.add_routine t.prog ~name ~loc:c.cl_loc ~parent:(Pclass cl) ~access:Pub ~sig_ in
      r.ro_kind <- (if which = "ctor" then Rk_ctor else Rk_dtor);
      r.ro_defined <- true;  (* compiler-generated *)
      c.cl_funcs <- c.cl_funcs @ [ r.ro_id ];
      Hashtbl.replace t.implicit_members key r.ro_id;
      r

(* record a constructor call for creating an object of class [cl] *)
and construct_class t benv (cl : Il.class_id) (arg_tys : Il.type_id list) ~loc : unit =
  let c = Il.class_ t.prog cl in
  let ctors =
    List.filter
      (fun rid -> (Il.routine t.prog rid).ro_kind = Rk_ctor)
      c.cl_funcs
    |> List.map (Il.routine t.prog)
  in
  let callee =
    match ctors with
    | [] -> Some (implicit_member t cl "ctor")
    | _ -> pick_overload t ctors arg_tys
  in
  (match callee with
   | Some r -> record_call t benv r ~loc
   | None -> ())

and destroy_class t benv (cl : Il.class_id) ~loc : unit =
  let c = Il.class_ t.prog cl in
  let dtors =
    List.filter (fun rid -> (Il.routine t.prog rid).ro_kind = Rk_dtor) c.cl_funcs
    |> List.map (Il.routine t.prog)
  in
  let callee =
    match dtors with [] -> implicit_member t cl "dtor" | d :: _ -> d
  in
  record_call t benv callee ~loc

(* return type of a routine *)
and ret_type_of t (r : Il.routine_entity) : Il.type_id =
  match (Il.type_ t.prog r.ro_sig).ty_kind with
  | Tfunc { rett; _ } -> rett
  | _ -> Il.ty_error t.prog

(* find member functions named [name] in class [cl] or its bases *)
and member_funcs_rec t (cl : Il.class_id) name : Il.routine_entity list =
  let c = Il.class_ t.prog cl in
  match Il.find_member_funcs t.prog c name with
  | [] ->
      let rec through = function
        | [] -> []
        | (b : Il.base_spec) :: rest -> (
            match member_funcs_rec t b.ba_class name with
            | [] -> through rest
            | fs -> fs)
      in
      through c.cl_bases
  | fs -> fs

and data_member_rec t (cl : Il.class_id) name : Il.data_member option =
  let c = Il.class_ t.prog cl in
  match List.find_opt (fun (m : Il.data_member) -> m.dm_name = name) c.cl_members with
  | Some m -> Some m
  | None ->
      let rec through = function
        | [] -> None
        | (b : Il.base_spec) :: rest -> (
            match data_member_rec t b.ba_class name with
            | Some m -> Some m
            | None -> through rest)
      in
      through c.cl_bases

(* resolve a member call  obj.m(args) / obj->m(args) *)
and member_call t benv obj_ty (m : Ast.qual_name) (arg_tys : Il.type_id list) ~loc :
    Il.type_id =
  match Il.class_of_type t.prog obj_ty with
  | None ->
      (* not a class: tolerated (e.g. builtin pseudo-members) *)
      Il.ty_error t.prog
  | Some cl -> (
      let last = Ast.last_part m in
      let name = last.Ast.id in
      match member_funcs_rec t cl name with
      | [] ->
          Diag.warn t.diags loc "class '%s' has no member function '%s'"
            (Il.class_ t.prog cl).cl_name name;
          Il.ty_error t.prog
      | candidates -> (
          match pick_overload t candidates arg_tys with
          | Some r ->
              record_call t benv r ~loc;
              ret_type_of t r
          | None -> Il.ty_error t.prog))

(* operator overload on class operands; returns None when not a class op *)
and class_operator t benv op (lhs_ty : Il.type_id) (rhs_tys : Il.type_id list) ~loc :
    Il.type_id option =
  match Il.class_of_type t.prog lhs_ty with
  | None -> None
  | Some cl -> (
      let name = "operator" ^ op in
      match member_funcs_rec t cl name with
      | [] -> (
          (* free operator function *)
          match Scope.find t.global name with
          | Some (Scope.Sym_routines rs) -> (
              let cands = List.map (Il.routine t.prog) !rs in
              match pick_overload t cands (lhs_ty :: rhs_tys) with
              | Some r ->
                  record_call t benv r ~loc;
                  Some (ret_type_of t r)
              | None -> None)
          | _ -> None)
      | candidates -> (
          match pick_overload t candidates rhs_tys with
          | Some r ->
              record_call t benv r ~loc;
              Some (ret_type_of t r)
          | None -> None))

(* type an expression, recording call edges and triggering instantiations *)
and ty_expr t benv (e : Ast.expr) : Il.type_id =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.IntE _ -> Il.ty_int t.prog
  | Ast.FloatE _ -> Il.ty_double t.prog
  | Ast.CharE _ -> Il.ty_char t.prog
  | Ast.BoolE _ -> Il.ty_bool t.prog
  | Ast.StringE _ ->
      Il.intern_type t.prog
        (Tptr
           (Il.intern_type t.prog
              (Tqual { base = Il.ty_char t.prog; q_const = true; q_volatile = false })))
  | Ast.ThisE -> (
      match benv.be_this with
      | Some cl -> Il.intern_type t.prog (Tptr (Il.intern_type t.prog (Tclass cl)))
      | None -> Il.ty_error t.prog)
  | Ast.IdE q -> id_type t benv q ~loc
  | Ast.Unary ("*", a) -> (
      let ty = ty_expr t benv a in
      match (Il.type_ t.prog (Il.strip_qual_ref t.prog ty)).ty_kind with
      | Tptr inner -> inner
      | Tarray (inner, _) -> inner
      | _ -> (
          match class_operator t benv "*" ty [] ~loc with
          | Some r -> r
          | None -> Il.ty_error t.prog))
  | Ast.Unary ("&", a) -> Il.intern_type t.prog (Tptr (ty_expr t benv a))
  | Ast.Unary ("!", a) ->
      ignore (ty_expr t benv a);
      Il.ty_bool t.prog
  | Ast.Unary (op, a) -> (
      let ty = ty_expr t benv a in
      match Il.class_of_type t.prog ty with
      | Some _ -> (
          match class_operator t benv op ty [] ~loc with
          | Some r -> r
          | None -> ty)
      | None -> ty)
  | Ast.Postfix (op, a) -> (
      let ty = ty_expr t benv a in
      match Il.class_of_type t.prog ty with
      | Some _ -> (
          match class_operator t benv op ty [ Il.ty_int t.prog ] ~loc with
          | Some r -> r
          | None -> ty)
      | None -> ty)
  | Ast.Binary (op, a, b) -> (
      let ta = ty_expr t benv a in
      let tb = ty_expr t benv b in
      match class_operator t benv op ta [ tb ] ~loc with
      | Some r -> r
      | None -> (
          match op with
          | "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" -> Il.ty_bool t.prog
          | _ ->
              (* usual arithmetic conversions, loosely *)
              let name ty = Il.type_name t.prog (Il.strip_qual_ref t.prog ty) in
              if name ta = "double" || name tb = "double" then Il.ty_double t.prog
              else if name ta = "float" || name tb = "float" then Il.ty_float t.prog
              else Il.strip_qual_ref t.prog ta))
  | Ast.Assign (op, a, b) -> (
      let ta = ty_expr t benv a in
      let tb = ty_expr t benv b in
      match class_operator t benv op ta [ tb ] ~loc with
      | Some r -> r
      | None -> ta)
  | Ast.Cond (c, a, b) ->
      ignore (ty_expr t benv c);
      let ta = ty_expr t benv a in
      ignore (ty_expr t benv b);
      ta
  | Ast.Call (f, args) -> resolve_call t benv f args ~loc
  | Ast.Member (obj, _, m) -> (
      let oty = ty_expr t benv obj in
      match Il.class_of_type t.prog oty with
      | Some cl -> (
          let name = (Ast.last_part m).Ast.id in
          match data_member_rec t cl name with
          | Some dm -> dm.dm_type
          | None -> (
              match member_funcs_rec t cl name with
              | r :: _ -> r.ro_sig
              | [] ->
                  Diag.warn t.diags loc "class '%s' has no member '%s'"
                    (Il.class_ t.prog cl).cl_name name;
                  Il.ty_error t.prog))
      | None -> Il.ty_error t.prog)
  | Ast.Index (a, i) -> (
      let ta = ty_expr t benv a in
      let ti = ty_expr t benv i in
      match class_operator t benv "[]" ta [ ti ] ~loc with
      | Some r -> r
      | None -> (
          match (Il.type_ t.prog (Il.strip_qual_ref t.prog ta)).ty_kind with
          | Tptr inner | Tarray (inner, _) -> inner
          | _ -> Il.ty_error t.prog))
  | Ast.CCast (ty, a) | Ast.NamedCast (_, ty, a) ->
      ignore (ty_expr t benv a);
      resolve_type t benv.be_scope ty ~loc
  | Ast.Construct (ty, args) -> (
      let arg_tys = List.map (ty_expr t benv) args in
      (* [S<int>::make(x)] parses as a functional cast of the "type"
         S<int>::make; when the name resolves to routines it is really a
         qualified (often static-member) call *)
      let as_routine_call =
        match ty with
        | Ast.TName q -> (
            match resolve_name t benv.be_scope q ~loc with
            | Some (Scope.Sym_routines rs) -> (
                let cands = List.map (Il.routine t.prog) !rs in
                match pick_overload t cands arg_tys with
                | Some r ->
                    record_call t benv r ~loc;
                    Some (ret_type_of t r)
                | None -> None)
            | _ -> None)
        | _ -> None
      in
      match as_routine_call with
      | Some rt -> rt
      | None ->
          let tid = resolve_type t benv.be_scope ty ~loc in
          (match Il.class_of_type t.prog tid with
           | Some cl -> construct_class t benv cl arg_tys ~loc
           | None -> ());
          tid)
  | Ast.New (ty, args, n) -> (
      let arg_tys = List.map (ty_expr t benv) (Option.value args ~default:[]) in
      (match n with Some n -> ignore (ty_expr t benv n) | None -> ());
      let tid = resolve_type t benv.be_scope ty ~loc in
      (match (Il.class_of_type t.prog tid, n) with
       | Some cl, None -> construct_class t benv cl arg_tys ~loc
       | Some cl, Some _ -> construct_class t benv cl [] ~loc
       | None, _ -> ());
      Il.intern_type t.prog (Tptr tid))
  | Ast.Delete (_, a) -> (
      let ty = ty_expr t benv a in
      (match (Il.type_ t.prog (Il.strip_qual_ref t.prog ty)).ty_kind with
       | Tptr inner -> (
           match Il.class_of_type t.prog inner with
           | Some cl -> destroy_class t benv cl ~loc
           | None -> ())
       | _ -> ());
      Il.ty_void t.prog)
  | Ast.SizeofE a ->
      ignore (ty_expr t benv a);
      Il.ty_int t.prog
  | Ast.SizeofT _ -> Il.ty_int t.prog
  | Ast.ThrowE a -> (
      (match a with Some a -> ignore (ty_expr t benv a) | None -> ());
      Il.ty_void t.prog)
  | Ast.Comma (a, b) ->
      ignore (ty_expr t benv a);
      ty_expr t benv b

(* the type of a (possibly qualified) identifier in an expression *)
and id_type t benv (q : Ast.qual_name) ~loc : Il.type_id =
  match q with
  | { global = false; parts = [ { id; targs = None } ] } -> (
      match Scope.find benv.be_scope id with
      | Some (Scope.Sym_var vs) -> vs.vs_type
      | Some (Scope.Sym_enum_const (ty, _)) -> ty
      | Some (Scope.Sym_routines rs) -> (
          match !rs with r :: _ -> (Il.routine t.prog r).ro_sig | [] -> Il.ty_error t.prog)
      | Some (Scope.Sym_class cl) -> Il.intern_type t.prog (Tclass cl)
      | Some (Scope.Sym_typedef ty) | Some (Scope.Sym_enum ty) -> ty
      | Some (Scope.Sym_template _) | Some (Scope.Sym_namespace _) | None -> (
          (* maybe an inherited member *)
          match benv.be_this with
          | Some cl -> (
              match data_member_rec t cl id with
              | Some dm -> dm.dm_type
              | None -> (
                  match member_funcs_rec t cl id with
                  | r :: _ -> r.ro_sig
                  | [] ->
                      Diag.warn t.diags loc "unresolved identifier '%s'" id;
                      Il.ty_error t.prog))
          | None ->
              Diag.warn t.diags loc "unresolved identifier '%s'" id;
              Il.ty_error t.prog))
  | _ -> (
      match resolve_name t benv.be_scope q ~loc with
      | Some (Scope.Sym_var vs) -> vs.vs_type
      | Some (Scope.Sym_enum_const (ty, _)) -> ty
      | Some (Scope.Sym_routines rs) -> (
          match !rs with r :: _ -> (Il.routine t.prog r).ro_sig | [] -> Il.ty_error t.prog)
      | Some (Scope.Sym_class cl) -> Il.intern_type t.prog (Tclass cl)
      | Some (Scope.Sym_typedef ty) | Some (Scope.Sym_enum ty) -> ty
      | _ ->
          Diag.warn t.diags loc "unresolved name '%s'" (Ast.qual_name_to_string q);
          Il.ty_error t.prog)

(* resolve a call expression *)
and resolve_call t benv (f : Ast.expr) (args : Ast.expr list) ~loc : Il.type_id =
  let arg_tys = List.map (ty_expr t benv) args in
  match f.Ast.e with
  | Ast.Member (obj, _, m) ->
      let oty = ty_expr t benv obj in
      member_call t benv oty m arg_tys ~loc
  | Ast.IdE q -> (
      let sym =
        (* unqualified name in a member context: member lookup first *)
        match (q.Ast.global, q.Ast.parts, benv.be_this) with
        | false, [ { id; targs = None } ], Some cl -> (
            match member_funcs_rec t cl id with
            | [] -> resolve_name t benv.be_scope q ~loc
            | fs -> Some (Scope.Sym_routines (ref (List.map (fun r -> r.Il.ro_id) fs))))
        | _ -> resolve_name t benv.be_scope q ~loc
      in
      match sym with
      | Some (Scope.Sym_routines rs) -> (
          let cands = List.map (Il.routine t.prog) !rs in
          match pick_overload t cands arg_tys with
          | Some r ->
              record_call t benv r ~loc;
              ret_type_of t r
          | None -> Il.ty_error t.prog)
      | Some (Scope.Sym_template te_id) -> (
          (* function template call with deduction *)
          match deduce_and_instantiate t benv te_id args arg_tys ~loc with
          | Some r ->
              record_call t benv r ~loc;
              ret_type_of t r
          | None -> Il.ty_error t.prog)
      | Some (Scope.Sym_class cl) ->
          construct_class t benv cl arg_tys ~loc;
          Il.intern_type t.prog (Tclass cl)
      | Some (Scope.Sym_var vs) -> (
          (* call through function pointer or functor *)
          match Il.class_of_type t.prog vs.vs_type with
          | Some cl -> member_call t benv (Il.intern_type t.prog (Tclass cl))
                         (Ast.simple_name "operator()") arg_tys ~loc
          | None -> (
              match (Il.type_ t.prog (Il.strip_qual_ref t.prog vs.vs_type)).ty_kind with
              | Tfunc { rett; _ } -> rett
              | Tptr p -> (
                  match (Il.type_ t.prog p).ty_kind with
                  | Tfunc { rett; _ } -> rett
                  | _ -> Il.ty_error t.prog)
              | _ -> Il.ty_error t.prog))
      | Some (Scope.Sym_typedef ty) | Some (Scope.Sym_enum ty) ->
          (* functional cast through a typedef *)
          (match Il.class_of_type t.prog ty with
           | Some cl -> construct_class t benv cl arg_tys ~loc
           | None -> ());
          ty
      | Some (Scope.Sym_enum_const (ty, _)) -> ty
      | Some (Scope.Sym_namespace _) | None ->
          Diag.warn t.diags loc "call to unresolved function '%s'"
            (Ast.qual_name_to_string q);
          Il.ty_error t.prog)
  | _ -> (
      (* arbitrary callee: functor call *)
      let fty = ty_expr t benv f in
      match Il.class_of_type t.prog fty with
      | Some _ -> (
          match class_operator t benv "()" fty arg_tys ~loc with
          | Some r -> r
          | None -> Il.ty_error t.prog)
      | None -> (
          match (Il.type_ t.prog (Il.strip_qual_ref t.prog fty)).ty_kind with
          | Tfunc { rett; _ } -> rett
          | _ -> Il.ty_error t.prog))

(* function template argument deduction from call arguments *)
and deduce_and_instantiate t _benv te_id (args : Ast.expr list)
    (arg_tys : Il.type_id list) ~loc : Il.routine_entity option =
  ignore args;
  let te = Il.template t.prog te_id in
  match te.te_pattern with
  | Some { Ast.d = Ast.DFunction fd; _ } -> (
      let names =
        List.map
          (function
            | Ast.TP_type (n, _) | Ast.TP_nontype (_, n, _) | Ast.TP_template n -> n)
          te.te_params
      in
      let env = ref [] in
      let def_scope =
        match Hashtbl.find_opt t.template_scopes te_id with
        | Some s -> s
        | None -> t.global
      in
      List.iteri
        (fun i (p : Ast.param) ->
          match List.nth_opt arg_tys i with
          | Some aty ->
              let aty = Il.strip_qual_ref t.prog aty in
              (* strip reference/const from the parameter pattern for deduction *)
              let rec strip_pat = function
                | Ast.TConst p | Ast.TVolatile p | Ast.TRef p -> strip_pat p
                | p -> p
              in
              ignore (match_type t def_scope ~tparams:names (strip_pat p.ptype) aty env)
          | None -> ())
        fd.Ast.f_params;
      (* order deduced args by parameter order *)
      let ordered =
        List.filter_map (fun n -> Option.map (fun a -> a) (List.assoc_opt n !env)) names
      in
      if List.length ordered < List.length names then begin
        (* fall back to defaults inside instantiate_function *)
        match instantiate_function t te_id ordered ~loc with
        | Some ro -> Some (Il.routine t.prog ro)
        | None -> None
      end
      else
        match instantiate_function t te_id ordered ~loc with
        | Some ro -> Some (Il.routine t.prog ro)
        | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and elab_stmt t benv (s : Ast.stmt) : unit =
  match s.Ast.s with
  | Ast.SExpr None -> ()
  | Ast.SExpr (Some e) -> ignore (ty_expr t benv e)
  | Ast.SDecl vds -> List.iter (elab_local_decl t benv) vds
  | Ast.SCompound ss -> elab_block t benv ss
  | Ast.SIf (c, a, b) ->
      ignore (ty_expr t benv c);
      elab_stmt t benv a;
      Option.iter (elab_stmt t benv) b
  | Ast.SWhile (c, b) ->
      ignore (ty_expr t benv c);
      elab_stmt t benv b
  | Ast.SDoWhile (b, c) ->
      elab_stmt t benv b;
      ignore (ty_expr t benv c)
  | Ast.SFor (i, c, st, b) ->
      let inner = { benv with be_scope = Scope.create ~parent:benv.be_scope Scope.Sk_block } in
      Option.iter (elab_stmt t inner) i;
      Option.iter (fun e -> ignore (ty_expr t inner e)) c;
      Option.iter (fun e -> ignore (ty_expr t inner e)) st;
      elab_stmt t inner b
  | Ast.SReturn e -> Option.iter (fun e -> ignore (ty_expr t benv e)) e
  | Ast.SBreak | Ast.SContinue -> ()
  | Ast.SSwitch (e, cases) ->
      ignore (ty_expr t benv e);
      List.iter
        (fun (c : Ast.switch_case) ->
          Option.iter (fun g -> ignore (ty_expr t benv g)) c.case_guard;
          List.iter (elab_stmt t benv) c.case_body)
        cases
  | Ast.STry (b, hs) ->
      elab_stmt t benv b;
      List.iter
        (fun (h : Ast.handler) ->
          let hsc = Scope.create ~parent:benv.be_scope Scope.Sk_block in
          (match h.h_param with
           | Some p ->
               let ty = resolve_type t hsc p.Ast.ptype ~loc:p.Ast.ploc in
               (match p.Ast.pname with
                | Some n ->
                    Scope.bind hsc n
                      (Scope.Sym_var { vs_name = n; vs_type = ty; vs_global = false })
                | None -> ())
           | None -> ());
          elab_stmt t { benv with be_scope = hsc } h.h_body)
        hs
  | Ast.SSpawn e ->
      (* [spawn f(args);] — type the call normally (recording the call edge
         and requesting the callee body), then mirror the outermost resolved
         call as a spawn site on the enclosing routine. *)
      let before = benv.be_routine.ro_calls in
      ignore (ty_expr t benv e);
      (match benv.be_routine.ro_calls with
       | cs :: _ when benv.be_routine.ro_calls != before ->
           benv.be_routine.ro_spawns <-
             { Il.ss_callee = cs.cs_callee; ss_loc = s.Ast.sloc; ss_join = None }
             :: benv.be_routine.ro_spawns
       | _ -> Diag.warn t.diags s.Ast.sloc "spawned call does not resolve to a routine")
  | Ast.SJoin target ->
      (* [join;] closes every open spawn in the routine; [join f;] only
         those spawning [f].  A join with no matching open spawn is
         reported but harmless. *)
      let name_matches id =
        match target with
        | None -> true
        | Some q -> (Il.routine t.prog id).ro_name = (Ast.last_part q).Ast.id
      in
      let matched = ref false in
      benv.be_routine.ro_spawns <-
        List.map
          (fun (ss : Il.spawn_site) ->
            if ss.ss_join = None && name_matches ss.ss_callee then begin
              matched := true;
              { ss with ss_join = Some s.Ast.sloc }
            end
            else ss)
          benv.be_routine.ro_spawns;
      if (not !matched) && target <> None then
        Diag.warn t.diags s.Ast.sloc "join does not match any outstanding spawn"

and elab_block t benv (ss : Ast.stmt list) : unit =
  let bsc = Scope.create ~parent:benv.be_scope Scope.Sk_block in
  let inner = { benv with be_scope = bsc } in
  List.iter (elab_stmt t inner) ss;
  (* end-of-lifetime: destructor calls for class-typed locals (the
     "lifetime contexts" the paper mentions).  Order is deterministic
     (reverse name order); true reverse-declaration order would need
     per-block declaration sequencing, which the PDB does not observe *)
  let class_locals = Hashtbl.fold
      (fun _ sym acc ->
        match sym with
        | Scope.Sym_var vs when not vs.vs_global -> (
            match Il.class_of_type t.prog vs.vs_type with
            | Some cl -> (
                (* destroy only direct objects, not pointers/references *)
                match (Il.type_ t.prog vs.vs_type).ty_kind with
                | Tclass _ | Tqual _ -> [ (vs.vs_name, cl) ] @ acc
                | _ -> acc)
            | None -> acc)
        | _ -> acc)
      bsc.Scope.syms []
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) class_locals in
  List.iter (fun (_, cl) -> destroy_class t benv cl ~loc:(block_end_loc ss)) sorted

and block_end_loc (ss : Ast.stmt list) : Pdt_util.Srcloc.t =
  match List.rev ss with
  | s :: _ -> s.Ast.sloc
  | [] -> Pdt_util.Srcloc.dummy

and elab_local_decl t benv (vd : Ast.var_decl) : unit =
  let loc = vd.Ast.v_loc in
  let ty = resolve_type t benv.be_scope vd.Ast.v_type ~loc in
  Scope.bind benv.be_scope vd.Ast.v_name
    (Scope.Sym_var { vs_name = vd.Ast.v_name; vs_type = ty; vs_global = false });
  let direct_class =
    match (Il.type_ t.prog ty).ty_kind with
    | Tclass cl -> Some cl
    | Tqual { base; _ } -> (
        match (Il.type_ t.prog base).ty_kind with Tclass cl -> Some cl | _ -> None)
    | _ -> None
  in
  match vd.Ast.v_init with
  | Ast.NoInit -> (
      match direct_class with
      | Some cl -> construct_class t benv cl [] ~loc
      | None -> ())
  | Ast.EqInit e -> (
      let ety = ty_expr t benv e in
      match direct_class with
      | Some cl -> construct_class t benv cl [ ety ] ~loc
      | None -> ())
  | Ast.CtorInit args -> (
      let arg_tys = List.map (ty_expr t benv) args in
      match direct_class with
      | Some cl -> construct_class t benv cl arg_tys ~loc
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Routine body elaboration driver                                     *)
(* ------------------------------------------------------------------ *)

and elaborate_body t (ro_id : Il.routine_id) (pb : pending_body) : unit =
  let r = Il.routine t.prog ro_id in
  if r.ro_defined then ()
  else begin
    r.ro_defined <- true;
    (match pb.pb_rtempl with
     | Some te -> r.ro_template <- Some te
     | None -> ());
    r.ro_body <- pb.pb_func.Ast.f_body;
    r.ro_inits <- pb.pb_func.Ast.f_inits;
    (* update position from the (possibly out-of-line) definition *)
    (match pb.pb_func.Ast.f_body_range with
     | Some br ->
         r.ro_extent <- Srcloc.extent ~header:pb.pb_func.Ast.f_header ~body:br ()
     | None -> ());
    let psc = Scope.create ~parent:pb.pb_scope Scope.Sk_block in
    List.iter
      (fun (p : Ast.param) ->
        let ty = resolve_type t psc p.ptype ~loc:p.ploc in
        match p.pname with
        | Some n ->
            Scope.bind psc n (Scope.Sym_var { vs_name = n; vs_type = ty; vs_global = false })
        | None -> ())
      pb.pb_func.Ast.f_params;
    let benv = { be_scope = psc; be_this = pb.pb_this; be_routine = r } in
    (* constructor member-initializers *)
    List.iter
      (fun (name, args) ->
        let arg_tys = List.map (ty_expr t benv) args in
        match pb.pb_this with
        | Some cl -> (
            match data_member_rec t cl name with
            | Some dm -> (
                match Il.class_of_type t.prog dm.dm_type with
                | Some mcl -> construct_class t benv mcl arg_tys ~loc:dm.dm_loc
                | None -> ())
            | None -> (
                (* base class initializer *)
                let c = Il.class_ t.prog cl in
                let base =
                  List.find_opt
                    (fun (b : Il.base_spec) ->
                      let bn = (Il.class_ t.prog b.ba_class).cl_name in
                      bn = name
                      || (match String.index_opt bn '<' with
                          | Some i -> String.sub bn 0 i = name
                          | None -> false))
                    c.cl_bases
                in
                match base with
                | Some b -> construct_class t benv b.ba_class arg_tys ~loc:r.ro_loc
                | None -> ()))
        | None -> ())
      pb.pb_func.Ast.f_inits;
    (match pb.pb_func.Ast.f_body with
     | Some { Ast.s = Ast.SCompound ss; _ } -> elab_block t benv ss
     | Some s -> elab_stmt t benv s
     | None -> ())
  end

and drain t : unit =
  while not (Queue.is_empty t.body_queue) do
    let ro_id, pb = Queue.pop t.body_queue in
    elaborate_body t ro_id pb
  done

(* ------------------------------------------------------------------ *)
(* Namespace-scope declarations                                        *)
(* ------------------------------------------------------------------ *)

and do_decl t (scope : Scope.t) (d : Ast.decl) : unit =
  match d.Ast.d with
  | Ast.DNamespace (None, ds, _) -> List.iter (do_decl t scope) ds
  | Ast.DNamespace (Some name, ds, range) -> (
      let ns_scope =
        match Scope.find_local scope name with
        | Some (Scope.Sym_namespace s) -> s
        | _ ->
            let ns =
              Il.add_namespace t.prog ~name ~loc:range.Srcloc.start
                ~parent:(Scope.parent_of scope)
            in
            (match Scope.parent_of scope with
             | Pnamespace parent_ns ->
                 let pn = Il.namespace t.prog parent_ns in
                 pn.na_members <- Rnamespace ns.na_id :: pn.na_members
             | _ -> ());
            let s = Scope.create ~parent:scope (Scope.Sk_namespace ns.na_id) in
            Scope.bind scope name (Scope.Sym_namespace s);
            s
      in
      List.iter (do_decl t ns_scope) ds)
  | Ast.DClass cd ->
      ignore
        (elab_class t scope cd ~access:Acc_na ~bind_name:true
           ~in_template_instance:false ())
  | Ast.DEnum (name, items) ->
      elab_enum t scope ~parent:(Scope.parent_of scope) name items d.Ast.dloc
  | Ast.DTypedef (ty, n) ->
      let id = resolve_type t scope ty ~loc:d.Ast.dloc in
      let te = Il.type_ t.prog id in
      if not (List.mem n te.ty_typedef_names) then
        te.ty_typedef_names <- te.ty_typedef_names @ [ n ];
      Scope.bind scope n (Scope.Sym_typedef id)
  | Ast.DFunction fd -> ignore (elab_function_decl t scope fd ~access:Acc_na ~bind_name:true)
  | Ast.DVar vd ->
      let ty = resolve_type t scope vd.Ast.v_type ~loc:vd.Ast.v_loc in
      Scope.bind scope vd.Ast.v_name
        (Scope.Sym_var { vs_name = vd.Ast.v_name; vs_type = ty; vs_global = true });
      t.prog.Il.globals <-
        { gv_name = vd.Ast.v_name; gv_qualified = vd.Ast.v_name; gv_type = ty;
          gv_init = vd.Ast.v_init; gv_loc = vd.Ast.v_loc;
          gv_parent = Scope.parent_of scope }
        :: t.prog.Il.globals
  | Ast.DTemplate _ -> elab_template t scope d ~access:Acc_na
  | Ast.DUsing (q, is_ns) -> elab_using t scope q is_ns d.Ast.dloc
  | Ast.DExplicitInst inner -> explicit_instantiate t scope inner
  | Ast.DAccess _ | Ast.DFriend _ | Ast.DEmpty -> ()

and explicit_instantiate t scope (inner : Ast.decl) : unit =
  match inner.Ast.d with
  | Ast.DClass { c_name = Some { id; targs = Some targs }; _ } -> (
      match Scope.find scope id with
      | Some (Scope.Sym_template te_id) -> (
          let args = List.map (resolve_targ t scope ~loc:inner.Ast.dloc) targs in
          match instantiate_class t te_id args ~loc:inner.Ast.dloc with
          | Some cl ->
              (* explicit instantiation instantiates *all* member bodies *)
              let c = Il.class_ t.prog cl in
              List.iter (fun rid -> request_body t rid) c.cl_funcs
          | None -> ())
      | _ ->
          Diag.error t.diags inner.Ast.dloc
            "explicit instantiation of unknown template '%s'" id)
  | Ast.DFunction fd -> (
      let last = Ast.last_part fd.Ast.f_name in
      match (Scope.find scope last.Ast.id, last.Ast.targs) with
      | Some (Scope.Sym_template te_id), Some targs ->
          let args = List.map (resolve_targ t scope ~loc:inner.Ast.dloc) targs in
          ignore (instantiate_function t te_id args ~loc:inner.Ast.dloc)
      | _ ->
          Diag.warn t.diags inner.Ast.dloc "unsupported explicit instantiation"
      )
  | _ -> Diag.warn t.diags inner.Ast.dloc "unsupported explicit instantiation"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let file_entities t (pp : Pdt_pp.Preproc.result) : unit =
  let by_path = Hashtbl.create 16 in
  List.iter
    (fun (fr : Pdt_pp.Preproc.file_record) ->
      let f = Il.add_file t.prog fr.f_path in
      Hashtbl.replace by_path fr.f_path f.fi_id;
      if t.prog.Il.main_file = None then t.prog.Il.main_file <- Some f.fi_id)
    pp.source_files;
  List.iter
    (fun (fr : Pdt_pp.Preproc.file_record) ->
      match Hashtbl.find_opt by_path fr.f_path with
      | Some fid ->
          let f = Il.file t.prog fid in
          f.fi_includes <-
            List.filter_map (Hashtbl.find_opt by_path) fr.f_includes
      | None -> ())
    pp.source_files

let macro_entities t (pp : Pdt_pp.Preproc.result) : unit =
  List.iter
    (fun (m : Pdt_pp.Preproc.macro) ->
      if not (Srcloc.is_dummy m.m_loc) then
        ignore (Il.add_macro t.prog ~name:m.m_name ~kind:"def" ~text:m.m_text ~loc:m.m_loc))
    pp.macros

(** Analyze one preprocessed translation unit, producing its IL. *)
let analyze ?(opts = default_options) ?limits ~diags (pp : Pdt_pp.Preproc.result)
    (tu : Ast.translation_unit) : Il.program =
  Trace.span ~cat:"sema"
    ~args:[ ("file", Trace.Str tu.Ast.tu_file) ]
    "sema.analyze"
  @@ fun () ->
  let t = create ~opts ?limits ~diags () in
  file_entities t pp;
  macro_entities t pp;
  List.iter (do_decl t t.global) tu.Ast.tu_decls;
  drain t;
  t.prog

(** Like {!analyze} but also returns the analysis state (used by tools that
    need scopes or the instantiation log, e.g. the prelink simulator). *)
let analyze_full ?(opts = default_options) ?limits ~diags (pp : Pdt_pp.Preproc.result)
    (tu : Ast.translation_unit) : t =
  Trace.span ~cat:"sema"
    ~args:[ ("file", Trace.Str tu.Ast.tu_file) ]
    "sema.analyze"
  @@ fun () ->
  let t = create ~opts ?limits ~diags () in
  file_entities t pp;
  macro_entities t pp;
  List.iter (do_decl t t.global) tu.Ast.tu_decls;
  drain t;
  t

(** Instantiation requests recorded while [instantiate_used = false]. *)
let deferred_requests t = List.rev t.deferred_requests

(** Audit log of performed instantiations (template id, argument key). *)
let instantiation_log t = List.rev t.all_instantiations
