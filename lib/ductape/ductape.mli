(** DUCTAPE: the program Database Utilities and Conversion Tools APplication
    Environment (paper §3.3) — the API tools use to navigate PDB files.

    The paper's class hierarchy (Figure 4) is mirrored by {!item} and the
    accessors grouped below by hierarchy level.  A {!t} corresponds to the
    paper's [PDB] class: an indexed, navigable program database. *)

module P = Pdt_pdb.Pdb

type t
(** An indexed program database. *)

(** {1 Loading and saving} *)

val index : P.t -> t
(** Index a parsed PDB for navigation. *)

val pdb : t -> P.t
(** The underlying program database. *)

val of_string : string -> t
(** Parse and index PDB text.  @raise Pdt_pdb.Pdb_parse.Parse_error *)

val of_file : string -> t
(** Read, parse and index a PDB file. *)

val to_string : t -> string
val to_file : t -> string -> unit

(** {1 The item hierarchy (Figure 4)}

    [pdbSimpleItem] (name, id) → [pdbFile] and [pdbItem] (location, parent,
    access) → [pdbMacro], [pdbType] and [pdbFatItem] (header/body extents) →
    [pdbTemplate], [pdbNamespace] and [pdbTemplateItem] (instantiated from a
    template) → [pdbClass], [pdbRoutine]. *)

type item =
  | File of P.source_file
  | Macro of P.macro_item
  | Type of P.type_item
  | Template of P.template_item
  | Namespace of P.namespace_item
  | Class of P.class_item
  | Routine of P.routine_item

val item_id : item -> int
(** pdbSimpleItem: the numeric id within the item's prefix group. *)

val item_prefix : item -> string
(** pdbSimpleItem: the PDB prefix ([so]/[ma]/[ty]/[te]/[na]/[cl]/[ro]). *)

val item_name : t -> item -> string
(** pdbSimpleItem: display name (derived for anonymous types). *)

val item_location : item -> P.loc option
(** pdbItem: source location; [None] for files. *)

val item_parent : item -> P.parentref option
(** pdbItem: enclosing class/namespace; [None] for files. *)

val item_access : item -> string option
(** pdbItem: access in the enclosing class ([pub]/[prot]/[priv]/[NA]). *)

val item_extent : item -> P.extent option
(** pdbFatItem: header and body source ranges. *)

val item_template_of : item -> int option
(** pdbTemplateItem: the [te#] id the item was instantiated from. *)

val is_item : item -> bool
val is_fat_item : item -> bool
val is_template_item : item -> bool

val items : t -> item list
(** Every item in the PDB, grouped in Table 1 order. *)

(** {1 Typed access} *)

val file : t -> int -> P.source_file option
val type_ : t -> int -> P.type_item option
val class_ : t -> int -> P.class_item option
val routine : t -> int -> P.routine_item option
val template : t -> int -> P.template_item option
val namespace : t -> int -> P.namespace_item option
val macro : t -> int -> P.macro_item option

val files : t -> P.source_file list
val types : t -> P.type_item list
val classes : t -> P.class_item list
val routines : t -> P.routine_item list
val templates : t -> P.template_item list
val namespaces : t -> P.namespace_item list
val macros : t -> P.macro_item list

val routine_full_name : t -> P.routine_item -> string
val class_full_name : t -> P.class_item -> string
val typeref_name : t -> P.typeref -> string

(** {1 Navigation} *)

val callees : t -> P.routine_item -> (P.call * P.routine_item) list
(** The routines a routine calls, with per-call-site information (the
    paper's [pdbRoutine::callees], used by Figure 5). *)

val callers : t -> P.routine_item -> P.routine_item list
(** Reverse call graph. *)

val bases : t -> P.class_item -> (string * bool * P.class_item) list
(** Direct bases with (access, virtual?, class). *)

val derived : t -> P.class_item -> P.class_item list

val member_functions : t -> P.class_item -> P.routine_item list

val template_items : t -> item list
(** All template instantiations — the heterogeneous
    [list<pdbTemplateItem>] usage the paper highlights. *)

val instantiations : t -> P.template_item -> item list
(** The instantiations of one template. *)

(** {1 Trees} *)

type 'a tree = { node : 'a; children : 'a tree list }

val include_tree : t -> P.source_file tree option
(** Source-file inclusion tree rooted at the main file; cycles cut. *)

val call_tree : ?root:P.routine_item -> t -> P.routine_item tree option
(** Static call tree (default root: [main]); cycles cut. *)

val class_hierarchy : t -> P.class_item tree list
(** Inheritance forest rooted at base classes. *)

(** {1 Merging} *)

val merge : P.t list -> P.t
(** Merge PDBs from separate compilations into one, eliminating duplicate
    entities — in particular duplicate template instantiations (the engine
    behind pdbmerge, Table 2).  Duplicates complete each other: an undefined
    routine adopts a duplicate's definition (body extent and call list).

    The result is canonical: a pure function of the deduplicated content,
    independent of input permutation {e and} of grouping.  Inputs are
    ordered by a content digest computed once per input, and a final pass
    sorts every kind by its canonical key, reassigns ids densely and
    rewrites all references.  Consequently [merge [merge xs; merge ys]]
    serializes to the same bytes as [merge (xs @ ys)] — parallel tree
    merges (see {!Pdt_build}) match the sequential result exactly — and
    the merge is idempotent up to normalization: [merge [merge ps]]
    serializes identically to [merge ps]. *)

(** {1 Delta merge}

    An incremental view over {!merge}: the units of a project, partitioned
    into fixed-size groups whose partial merges are memoized by content.
    Because the merge is canonical under grouping, replacing one unit's
    contribution re-merges only its group plus a top-level merge over the
    group partials — and the result is byte-identical to a flat
    [merge] over all current units.  This is the in-memory delta path the
    incremental build driver and the planned watch daemon use between
    edits. *)

module Delta : sig
  type t
  (** A persistent (functional) set of named unit PDBs with a shared
      partial-merge memo.  Versions returned by {!set}/{!remove} share the
      memo, so groups untouched by an edit keep their partial merges. *)

  val create : ?group_size:int -> (string * P.t) list -> t
  (** [group_size] defaults to 8; duplicate names keep the last binding. *)

  val names : t -> string list
  (** Unit names, sorted. *)

  val mem : t -> string -> bool

  val set : t -> string -> P.t -> t
  (** Splice a unit in: replaces the stale contribution under the same
      name, or adds a new unit. *)

  val remove : t -> string -> t
  (** Drop a unit's contribution. *)

  val merged : t -> P.t
  (** The merge of every current unit — byte-identical (serialized) to
      [merge] of the same PDBs.  Re-merges only groups whose content
      changed since the last call; cf. {!last_reused}. *)

  val last_reused : t -> int
  (** Groups served from the memo by the last {!merged} call. *)

  val last_remerged : t -> int
  (** Groups actually re-merged by the last {!merged} call. *)
end
