(** DUCTAPE: the C++ program Database Utilities and Conversion Tools
    APplication Environment (paper §3.3).

    DUCTAPE gives applications an object-style API over PDB files.  The
    paper's class hierarchy (Figure 4) is:

    {v
    pdbSimpleItem ─┬─ pdbFile
                   └─ pdbItem ─┬─ pdbMacro
                               ├─ pdbType
                               └─ pdbFatItem ─┬─ pdbTemplate
                                              ├─ pdbNamespace
                                              └─ pdbTemplateItem ─┬─ pdbClass
                                                                  └─ pdbRoutine
    v}

    In OCaml we realize the hierarchy as the {!item} sum type plus total
    accessors at each level of the hierarchy: every item has [name]/[id]
    (pdbSimpleItem); every non-file item has [location]/[parent]/[access]
    (pdbItem); fat items add [header]/[body] positions; template items add
    [template_of] (the template they instantiate).  The [is_*] predicates
    express the is-a relations.

    The {!t} value corresponds to the paper's [PDB] class: it indexes one
    (possibly merged) PDB file and provides the file-inclusion tree, the
    static call graph, the class hierarchy, and {!merge}. *)

module P = Pdt_pdb.Pdb

type t = {
  pdb : P.t;
  files : (int, P.source_file) Hashtbl.t;
  types : (int, P.type_item) Hashtbl.t;
  classes : (int, P.class_item) Hashtbl.t;
  routines : (int, P.routine_item) Hashtbl.t;
  templates : (int, P.template_item) Hashtbl.t;
  namespaces : (int, P.namespace_item) Hashtbl.t;
  macros : (int, P.macro_item) Hashtbl.t;
  derived : (int, int list) Hashtbl.t;     (** class -> derived classes *)
  callers : (int, int list) Hashtbl.t;     (** routine -> callers *)
}

let index (pdb : P.t) : t =
  let h mk lst key =
    let tbl = Hashtbl.create 64 in
    List.iter (fun x -> Hashtbl.replace tbl (key x) (mk x)) lst;
    tbl
  in
  let id x = x in
  let t =
    { pdb;
      files = h id pdb.P.files (fun f -> f.P.so_id);
      types = h id pdb.P.types (fun x -> x.P.ty_id);
      classes = h id pdb.P.classes (fun x -> x.P.cl_id);
      routines = h id pdb.P.routines (fun x -> x.P.ro_id);
      templates = h id pdb.P.templates (fun x -> x.P.te_id);
      namespaces = h id pdb.P.namespaces (fun x -> x.P.na_id);
      macros = h id pdb.P.pdb_macros (fun x -> x.P.ma_id);
      derived = Hashtbl.create 64;
      callers = Hashtbl.create 64 }
  in
  (* both reverse tables accumulate newest-first and are reversed once at
     the end; appending per edge would be quadratic in the fan-in *)
  List.iter
    (fun (c : P.class_item) ->
      List.iter
        (fun (_, _, base) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt t.derived base) in
          Hashtbl.replace t.derived base (c.P.cl_id :: cur))
        c.P.cl_bases)
    pdb.P.classes;
  let seen_edge = Hashtbl.create 256 in
  List.iter
    (fun (r : P.routine_item) ->
      List.iter
        (fun (c : P.call) ->
          if not (Hashtbl.mem seen_edge (c.P.c_callee, r.P.ro_id)) then begin
            Hashtbl.add seen_edge (c.P.c_callee, r.P.ro_id) ();
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt t.callers c.P.c_callee)
            in
            Hashtbl.replace t.callers c.P.c_callee (r.P.ro_id :: cur)
          end)
        r.P.ro_calls)
    pdb.P.routines;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) t.derived;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) t.callers;
  t

let pdb t = t.pdb

(* Loading sniffs the container format (ASCII vs PDB-B).  On the binary
   path the whole load — mmap, record decode, and index build — runs
   under one [pdb.mmap_index] span: that is the end-to-end "cold load"
   cost the B10 bench tracks against the ASCII parser. *)
let of_string s =
  match Pdt_pdb.Pdb_io.sniff_string s with
  | Pdt_pdb.Pdb_io.Binary ->
      Pdt_util.Trace.timed ~cat:"pdb" "pdb.mmap_index" @@ fun () ->
      index (Pdt_pdb.Pdb_bin.of_string s)
  | Pdt_pdb.Pdb_io.Ascii -> index (Pdt_pdb.Pdb_parse.of_string s)

let of_file p =
  match Pdt_pdb.Pdb_io.sniff_file p with
  | Pdt_pdb.Pdb_io.Binary ->
      Pdt_util.Trace.timed ~cat:"pdb" "pdb.mmap_index" @@ fun () ->
      index (Pdt_pdb.Pdb_bin.of_file p)
  | Pdt_pdb.Pdb_io.Ascii -> index (Pdt_pdb.Pdb_parse.of_file p)

let to_string t = Pdt_pdb.Pdb_write.to_string t.pdb
let to_file t path = Pdt_pdb.Pdb_write.to_file t.pdb path

(* ------------------------------------------------------------------ *)
(* The item hierarchy (Figure 4)                                       *)
(* ------------------------------------------------------------------ *)

type item =
  | File of P.source_file
  | Macro of P.macro_item
  | Type of P.type_item
  | Template of P.template_item
  | Namespace of P.namespace_item
  | Class of P.class_item
  | Routine of P.routine_item

(* pdbSimpleItem interface *)

let item_id = function
  | File f -> f.P.so_id
  | Macro m -> m.P.ma_id
  | Type ty -> ty.P.ty_id
  | Template te -> te.P.te_id
  | Namespace n -> n.P.na_id
  | Class c -> c.P.cl_id
  | Routine r -> r.P.ro_id

let item_prefix = function
  | File _ -> "so"
  | Macro _ -> "ma"
  | Type _ -> "ty"
  | Template _ -> "te"
  | Namespace _ -> "na"
  | Class _ -> "cl"
  | Routine _ -> "ro"

let item_name t = function
  | File f -> f.P.so_name
  | Macro m -> m.P.ma_name
  | Type ty -> P.typeref_name t.pdb (P.Tyref ty.P.ty_id)
  | Template te -> te.P.te_name
  | Namespace n -> n.P.na_name
  | Class c -> c.P.cl_name
  | Routine r -> r.P.ro_name

(* pdbItem interface: location / parent / access (files have none) *)

let item_location = function
  | File _ -> None
  | Macro m -> Some m.P.ma_loc
  | Type ty -> Some ty.P.ty_loc
  | Template te -> Some te.P.te_loc
  | Namespace n -> Some n.P.na_loc
  | Class c -> Some c.P.cl_loc
  | Routine r -> Some r.P.ro_loc

let item_parent = function
  | File _ -> None
  | Macro _ -> Some P.Pnone
  | Type ty -> Some ty.P.ty_parent
  | Template te -> Some te.P.te_parent
  | Namespace n -> Some n.P.na_parent
  | Class c -> Some c.P.cl_parent
  | Routine r -> Some r.P.ro_parent

let item_access = function
  | File _ -> None
  | Macro _ | Namespace _ -> Some "NA"
  | Type ty -> Some ty.P.ty_acs
  | Template te -> Some te.P.te_acs
  | Class c -> Some c.P.cl_acs
  | Routine r -> Some r.P.ro_acs

(* pdbFatItem interface: header/body source extents *)

let item_extent = function
  | Template te -> Some te.P.te_pos
  | Namespace _ -> None
  | Class c -> Some c.P.cl_pos
  | Routine r -> Some r.P.ro_pos
  | File _ | Macro _ | Type _ -> None

(* pdbTemplateItem interface: the template an item instantiates *)

let item_template_of = function
  | Class c -> c.P.cl_templ
  | Routine r -> r.P.ro_templ
  | File _ | Macro _ | Type _ | Template _ | Namespace _ -> None

(* is-a predicates for the hierarchy *)

let is_item = function File _ -> false | _ -> true
let is_fat_item = function
  | Template _ | Namespace _ | Class _ | Routine _ -> true
  | File _ | Macro _ | Type _ -> false
let is_template_item = function Class _ | Routine _ -> true | _ -> false

(** All items in the PDB, grouped in Table 1 order. *)
let items t : item list =
  List.map (fun f -> File f) t.pdb.P.files
  @ List.map (fun n -> Namespace n) t.pdb.P.namespaces
  @ List.map (fun te -> Template te) t.pdb.P.templates
  @ List.map (fun r -> Routine r) t.pdb.P.routines
  @ List.map (fun c -> Class c) t.pdb.P.classes
  @ List.map (fun ty -> Type ty) t.pdb.P.types
  @ List.map (fun m -> Macro m) t.pdb.P.pdb_macros

(* ------------------------------------------------------------------ *)
(* Typed getters (the per-class member functions)                      *)
(* ------------------------------------------------------------------ *)

let file t id = Hashtbl.find_opt t.files id
let type_ t id = Hashtbl.find_opt t.types id
let class_ t id = Hashtbl.find_opt t.classes id
let routine t id = Hashtbl.find_opt t.routines id
let template t id = Hashtbl.find_opt t.templates id
let namespace t id = Hashtbl.find_opt t.namespaces id
let macro t id = Hashtbl.find_opt t.macros id

let files t = t.pdb.P.files
let types t = t.pdb.P.types
let classes t = t.pdb.P.classes
let routines t = t.pdb.P.routines
let templates t = t.pdb.P.templates
let namespaces t = t.pdb.P.namespaces
let macros t = t.pdb.P.pdb_macros

let routine_full_name t r = P.routine_full_name t.pdb r
let class_full_name t c = P.class_full_name t.pdb c
let typeref_name t r = P.typeref_name t.pdb r

(** Callees of a routine (the paper's [pdbRoutine::callees]). *)
let callees t (r : P.routine_item) : (P.call * P.routine_item) list =
  List.filter_map
    (fun (c : P.call) -> Option.map (fun r' -> (c, r')) (routine t c.P.c_callee))
    r.P.ro_calls

(** Callers of a routine (reverse call graph). *)
let callers t (r : P.routine_item) : P.routine_item list =
  List.filter_map (routine t)
    (Option.value ~default:[] (Hashtbl.find_opt t.callers r.P.ro_id))

(** Direct base classes with their access/virtual flags. *)
let bases t (c : P.class_item) : (string * bool * P.class_item) list =
  List.filter_map
    (fun (acs, virt, id) -> Option.map (fun b -> (acs, virt, b)) (class_ t id))
    c.P.cl_bases

(** Classes directly derived from [c]. *)
let derived t (c : P.class_item) : P.class_item list =
  List.filter_map (class_ t)
    (Option.value ~default:[] (Hashtbl.find_opt t.derived c.P.cl_id))

(** Member functions of a class. *)
let member_functions t (c : P.class_item) : P.routine_item list =
  List.filter_map (fun (ro, _) -> routine t ro) c.P.cl_funcs

(** All template instantiations, classes and routines together — the
    [list<pdbTemplateItem>] usage the paper highlights. *)
let template_items t : item list =
  List.map (fun c -> Class c) (List.filter (fun c -> c.P.cl_templ <> None) t.pdb.P.classes)
  @ List.map (fun r -> Routine r)
      (List.filter (fun (r : P.routine_item) -> r.P.ro_templ <> None) t.pdb.P.routines)

(** Instantiations of a given template. *)
let instantiations t (te : P.template_item) : item list =
  List.filter
    (fun it -> item_template_of it = Some te.P.te_id)
    (template_items t)

(* ------------------------------------------------------------------ *)
(* Trees (include tree, call tree, class hierarchy)                    *)
(* ------------------------------------------------------------------ *)

type 'a tree = { node : 'a; children : 'a tree list }

(** The source-file inclusion tree, rooted at the main source file (the
    first file of the PDB).  Cycles (mutual inclusion guards) are cut. *)
let include_tree t : P.source_file tree option =
  match t.pdb.P.files with
  | [] -> None
  | root :: _ ->
      let rec build seen (f : P.source_file) =
        { node = f;
          children =
            List.filter_map
              (fun id ->
                if List.mem id seen then None
                else Option.map (build (id :: seen)) (file t id))
              f.P.so_includes }
      in
      Some (build [ root.P.so_id ] root)

(** Static call tree rooted at [root] (default: the routine named "main").
    Cycles are cut at the repeated node. *)
let call_tree ?root t : P.routine_item tree option =
  let root =
    match root with
    | Some r -> Some r
    | None ->
        List.find_opt (fun (r : P.routine_item) -> r.P.ro_name = "main") t.pdb.P.routines
  in
  Option.map
    (fun root ->
      let rec build seen (r : P.routine_item) =
        { node = r;
          children =
            List.filter_map
              (fun (c : P.call) ->
                if List.mem c.P.c_callee seen then None
                else
                  Option.map (build (c.P.c_callee :: seen)) (routine t c.P.c_callee))
              r.P.ro_calls }
      in
      build [ root.P.ro_id ] root)
    root

(** The class hierarchy as a forest rooted at base classes. *)
let class_hierarchy t : P.class_item tree list =
  let roots = List.filter (fun (c : P.class_item) -> c.P.cl_bases = []) t.pdb.P.classes in
  let rec build seen (c : P.class_item) =
    { node = c;
      children =
        List.filter_map
          (fun (d : P.class_item) ->
            if List.mem d.P.cl_id seen then None
            else Some (build (d.P.cl_id :: seen) d))
          (derived t c) }
  in
  List.map (fun c -> build [ c.P.cl_id ] c) roots

(* ------------------------------------------------------------------ *)
(* Merge (the engine behind pdbmerge)                                  *)
(* ------------------------------------------------------------------ *)

(* Canonical keys identify "the same entity" across translation units; in
   particular two instantiations of the same template in different TUs get
   the same key, which is how pdbmerge "eliminates duplicate template
   instantiations" (Table 2). *)

let file_key (f : P.source_file) = f.P.so_name
let macro_key (m : P.macro_item) = m.P.ma_name ^ "\x00" ^ m.P.ma_text

let class_key (pdb : P.t) (c : P.class_item) =
  P.class_full_name pdb c ^ "\x00" ^ c.P.cl_kind

let namespace_key (pdb : P.t) (n : P.namespace_item) =
  P.parent_prefix pdb n.P.na_parent ^ n.P.na_name

let template_key (pdb : P.t) (te : P.template_item) =
  P.parent_prefix pdb te.P.te_parent ^ te.P.te_name ^ "\x00" ^ te.P.te_kind
  ^ "\x00" ^ te.P.te_text

let routine_key (pdb : P.t) (r : P.routine_item) =
  P.routine_full_name pdb r ^ "\x00" ^ P.typeref_name pdb r.P.ro_sig

let type_key (pdb : P.t) (ty : P.type_item) =
  P.ykind_string ty.P.ty_info ^ "\x00" ^ P.typeref_name pdb (P.Tyref ty.P.ty_id)

(** Merge several PDBs into one, eliminating duplicate entities (notably
    duplicate template instantiations).  Later occurrences contribute
    definitions that earlier ones lacked: an undefined routine merged with a
    defined duplicate adopts its body position and call list.

    The result is canonical: it depends only on the deduplicated content,
    not on the caller's input order or grouping.  Inputs are first sorted
    by a content digest (computed once per input — only the 16-byte key is
    retained for the sort), and after deduplication a final pass orders
    every kind by its canonical key, reassigns ids densely in that order,
    rewrites all references, and sorts the unioned reference lists.  Hence
    for any partition of the inputs, merging the partial merges yields the
    same bytes as one flat merge — which is what lets {!Pdt_build}'s
    parallel tree merge reduce pairwise on worker domains and still match
    the sequential result exactly. *)
let merge (pdbs : P.t list) : P.t =
  Pdt_util.Trace.timed ~cat:"pdb" "pdb.merge" @@ fun () ->
  let pdbs =
    List.map (fun p -> (Pdt_pdb.Pdb_digest.of_pdb p, p)) pdbs
    |> List.stable_sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map snd
  in
  let out = P.create () in
  (* degraded-compilation markers: the merge is incomplete iff any input
     is, and the diagnostic counts add up.  OR and sum are associative and
     commutative, so the parallel tree merge still matches a flat merge. *)
  List.iter
    (fun (p : P.t) ->
      if p.P.incomplete then begin
        out.P.incomplete <- true;
        out.P.diag_count <- out.P.diag_count + p.P.diag_count
      end)
    pdbs;
  (* key -> new id, per kind *)
  let fkeys = Hashtbl.create 64 and ckeys = Hashtbl.create 64 in
  let rkeys = Hashtbl.create 256 and tekeys = Hashtbl.create 64 in
  let nkeys = Hashtbl.create 16 and tykeys = Hashtbl.create 256 in
  let mkeys = Hashtbl.create 64 in
  let next_f = ref 1 and next_c = ref 1 and next_r = ref 1 and next_te = ref 1 in
  let next_n = ref 1 and next_ty = ref 1 and next_m = ref 1 in
  (* accumulated merged items by new id *)
  let mfiles : (int, P.source_file) Hashtbl.t = Hashtbl.create 64 in
  let mclasses : (int, P.class_item) Hashtbl.t = Hashtbl.create 64 in
  let mroutines : (int, P.routine_item) Hashtbl.t = Hashtbl.create 256 in
  let mtemplates : (int, P.template_item) Hashtbl.t = Hashtbl.create 64 in
  let mnamespaces : (int, P.namespace_item) Hashtbl.t = Hashtbl.create 16 in
  let mtypes : (int, P.type_item) Hashtbl.t = Hashtbl.create 256 in
  let mmacros : (int, P.macro_item) Hashtbl.t = Hashtbl.create 64 in
  let order_f = ref [] and order_c = ref [] and order_r = ref [] in
  let order_te = ref [] and order_n = ref [] and order_ty = ref [] in
  let order_m = ref [] in
  List.iter
    (fun (pdb : P.t) ->
      (* pass 1: assign new ids for this pdb's items *)
      let fmap = Hashtbl.create 16 and cmap = Hashtbl.create 64 in
      let rmap = Hashtbl.create 256 and temap = Hashtbl.create 64 in
      let nmap = Hashtbl.create 16 and tymap = Hashtbl.create 256 in
      let mmap = Hashtbl.create 64 in
      let alloc keys key next map oldid order =
        match Hashtbl.find_opt keys key with
        | Some newid ->
            Hashtbl.replace map oldid newid;
            (newid, false)
        | None ->
            let newid = !next in
            incr next;
            Hashtbl.replace keys key newid;
            Hashtbl.replace map oldid newid;
            order := newid :: !order;
            (newid, true)
      in
      List.iter
        (fun (f : P.source_file) ->
          ignore (alloc fkeys (file_key f) next_f fmap f.P.so_id order_f))
        pdb.P.files;
      List.iter
        (fun (n : P.namespace_item) ->
          ignore (alloc nkeys (namespace_key pdb n) next_n nmap n.P.na_id order_n))
        pdb.P.namespaces;
      List.iter
        (fun (te : P.template_item) ->
          ignore (alloc tekeys (template_key pdb te) next_te temap te.P.te_id order_te))
        pdb.P.templates;
      List.iter
        (fun (c : P.class_item) ->
          ignore (alloc ckeys (class_key pdb c) next_c cmap c.P.cl_id order_c))
        pdb.P.classes;
      List.iter
        (fun (r : P.routine_item) ->
          ignore (alloc rkeys (routine_key pdb r) next_r rmap r.P.ro_id order_r))
        pdb.P.routines;
      List.iter
        (fun (ty : P.type_item) ->
          ignore (alloc tykeys (type_key pdb ty) next_ty tymap ty.P.ty_id order_ty))
        pdb.P.types;
      List.iter
        (fun (m : P.macro_item) ->
          ignore (alloc mkeys (macro_key m) next_m mmap m.P.ma_id order_m))
        pdb.P.pdb_macros;
      (* pass 2: rewrite and merge *)
      let remap_loc (l : P.loc) =
        if l.P.lfile = 0 then l
        else
          match Hashtbl.find_opt fmap l.P.lfile with
          | Some f -> { l with P.lfile = f }
          | None -> P.null_loc
      in
      let remap_extent (e : P.extent) =
        { P.hstart = remap_loc e.P.hstart; hstop = remap_loc e.P.hstop;
          bstart = remap_loc e.P.bstart; bstop = remap_loc e.P.bstop }
      in
      let remap_typeref = function
        | P.Tyref id -> P.Tyref (Option.value ~default:0 (Hashtbl.find_opt tymap id))
        | P.Clref id -> P.Clref (Option.value ~default:0 (Hashtbl.find_opt cmap id))
      in
      let remap_parent = function
        | P.Pcl id -> P.Pcl (Option.value ~default:0 (Hashtbl.find_opt cmap id))
        | P.Pna id -> P.Pna (Option.value ~default:0 (Hashtbl.find_opt nmap id))
        | P.Pnone -> P.Pnone
      in
      List.iter
        (fun (f : P.source_file) ->
          let newid = Hashtbl.find fmap f.P.so_id in
          let includes = List.filter_map (Hashtbl.find_opt fmap) f.P.so_includes in
          match Hashtbl.find_opt mfiles newid with
          | None ->
              Hashtbl.replace mfiles newid
                { P.so_id = newid; so_name = f.P.so_name; so_includes = includes }
          | Some existing ->
              List.iter
                (fun i ->
                  if not (List.mem i existing.P.so_includes) then
                    existing.P.so_includes <- existing.P.so_includes @ [ i ])
                includes)
        pdb.P.files;
      List.iter
        (fun (n : P.namespace_item) ->
          let newid = Hashtbl.find nmap n.P.na_id in
          let members =
            List.filter_map
              (fun (r : P.itemref) ->
                match r with
                | P.Rcl i -> Option.map (fun i -> P.Rcl i) (Hashtbl.find_opt cmap i)
                | P.Rro i -> Option.map (fun i -> P.Rro i) (Hashtbl.find_opt rmap i)
                | P.Rna i -> Option.map (fun i -> P.Rna i) (Hashtbl.find_opt nmap i)
                | P.Rty i -> Option.map (fun i -> P.Rty i) (Hashtbl.find_opt tymap i)
                | P.Rte i -> Option.map (fun i -> P.Rte i) (Hashtbl.find_opt temap i)
                | P.Rso i -> Option.map (fun i -> P.Rso i) (Hashtbl.find_opt fmap i)
                | P.Rma i -> Option.map (fun i -> P.Rma i) (Hashtbl.find_opt mmap i))
              n.P.na_members
          in
          match Hashtbl.find_opt mnamespaces newid with
          | None ->
              Hashtbl.replace mnamespaces newid
                { n with P.na_id = newid; na_loc = remap_loc n.P.na_loc;
                  na_parent = remap_parent n.P.na_parent; na_members = members }
          | Some existing ->
              List.iter
                (fun m ->
                  if not (List.mem m existing.P.na_members) then
                    existing.P.na_members <- existing.P.na_members @ [ m ])
                members)
        pdb.P.namespaces;
      List.iter
        (fun (te : P.template_item) ->
          let newid = Hashtbl.find temap te.P.te_id in
          if not (Hashtbl.mem mtemplates newid) then
            Hashtbl.replace mtemplates newid
              { te with P.te_id = newid; te_loc = remap_loc te.P.te_loc;
                te_parent = remap_parent te.P.te_parent;
                te_pos = remap_extent te.P.te_pos })
        pdb.P.templates;
      List.iter
        (fun (c : P.class_item) ->
          let newid = Hashtbl.find cmap c.P.cl_id in
          let rewritten =
            { c with P.cl_id = newid; cl_loc = remap_loc c.P.cl_loc;
              cl_parent = remap_parent c.P.cl_parent;
              cl_templ = Option.bind c.P.cl_templ (Hashtbl.find_opt temap);
              cl_stempl = Option.bind c.P.cl_stempl (Hashtbl.find_opt temap);
              cl_bases =
                List.filter_map
                  (fun (a, v, b) ->
                    Option.map (fun b -> (a, v, b)) (Hashtbl.find_opt cmap b))
                  c.P.cl_bases;
              cl_friends =
                List.filter_map
                  (function
                    | `Cl i -> Option.map (fun i -> `Cl i) (Hashtbl.find_opt cmap i)
                    | `Ro i -> Option.map (fun i -> `Ro i) (Hashtbl.find_opt rmap i))
                  c.P.cl_friends;
              cl_funcs =
                List.filter_map
                  (fun (ro, l) ->
                    Option.map (fun ro -> (ro, remap_loc l)) (Hashtbl.find_opt rmap ro))
                  c.P.cl_funcs;
              cl_members =
                List.map
                  (fun (m : P.member) ->
                    { m with P.m_loc = remap_loc m.P.m_loc;
                      m_type = remap_typeref m.P.m_type })
                  c.P.cl_members;
              cl_pos = remap_extent c.P.cl_pos }
          in
          match Hashtbl.find_opt mclasses newid with
          | None -> Hashtbl.replace mclasses newid rewritten
          | Some existing ->
              (* a complete definition beats a forward declaration; merge the
                 member-function lists of partial (used-mode) instantiations *)
              if existing.P.cl_members = [] && rewritten.P.cl_members <> [] then
                Hashtbl.replace mclasses newid rewritten
              else
                List.iter
                  (fun (ro, l) ->
                    if not (List.mem_assoc ro existing.P.cl_funcs) then
                      existing.P.cl_funcs <- existing.P.cl_funcs @ [ (ro, l) ])
                  rewritten.P.cl_funcs)
        pdb.P.classes;
      List.iter
        (fun (r : P.routine_item) ->
          let newid = Hashtbl.find rmap r.P.ro_id in
          let rewritten =
            { r with P.ro_id = newid; ro_loc = remap_loc r.P.ro_loc;
              ro_parent = remap_parent r.P.ro_parent;
              ro_sig = remap_typeref r.P.ro_sig;
              ro_templ = Option.bind r.P.ro_templ (Hashtbl.find_opt temap);
              ro_calls =
                List.filter_map
                  (fun (c : P.call) ->
                    Option.map
                      (fun callee ->
                        { c with P.c_callee = callee; c_loc = remap_loc c.P.c_loc })
                      (Hashtbl.find_opt rmap c.P.c_callee))
                  r.P.ro_calls;
              ro_spawns =
                List.filter_map
                  (fun (s : P.spawn) ->
                    Option.map
                      (fun callee ->
                        { P.sp_callee = callee; sp_loc = remap_loc s.P.sp_loc;
                          sp_join = Option.map remap_loc s.P.sp_join })
                      (Hashtbl.find_opt rmap s.P.sp_callee))
                  r.P.ro_spawns;
              ro_du =
                List.map
                  (fun (v : P.du_var) ->
                    { v with
                      P.v_defs = List.map remap_loc v.P.v_defs;
                      v_uses =
                        List.map
                          (fun (u : P.du_use) ->
                            { u with P.u_loc = remap_loc u.P.u_loc })
                          v.P.v_uses })
                  r.P.ro_du;
              ro_pos = remap_extent r.P.ro_pos }
          in
          match Hashtbl.find_opt mroutines newid with
          | None -> Hashtbl.replace mroutines newid rewritten
          | Some existing ->
              (* a definition from a later TU completes a declaration *)
              if rewritten.P.ro_defined && not existing.P.ro_defined then
                Hashtbl.replace mroutines newid rewritten)
        pdb.P.routines;
      List.iter
        (fun (ty : P.type_item) ->
          let newid = Hashtbl.find tymap ty.P.ty_id in
          if not (Hashtbl.mem mtypes newid) then
            Hashtbl.replace mtypes newid
              { ty with P.ty_id = newid; ty_loc = remap_loc ty.P.ty_loc;
                ty_parent = remap_parent ty.P.ty_parent;
                ty_info =
                  (match ty.P.ty_info with
                   | P.Ybuiltin _ | P.Yenum _ | P.Ytparam | P.Yerror -> ty.P.ty_info
                   | P.Yptr r -> P.Yptr (remap_typeref r)
                   | P.Yref r -> P.Yref (remap_typeref r)
                   | P.Ytref { target; yconst; yvolatile } ->
                       P.Ytref { target = remap_typeref target; yconst; yvolatile }
                   | P.Yarray { elem; size } ->
                       P.Yarray { elem = remap_typeref elem; size }
                   | P.Yfunc { rett; args; ellipsis; cqual; exceptions } ->
                       P.Yfunc
                         { rett = remap_typeref rett;
                           args = List.map (fun (r, d) -> (remap_typeref r, d)) args;
                           ellipsis; cqual;
                           exceptions = Option.map (List.map remap_typeref) exceptions }) })
        pdb.P.types;
      List.iter
        (fun (m : P.macro_item) ->
          let newid = Hashtbl.find mmap m.P.ma_id in
          if not (Hashtbl.mem mmacros newid) then
            Hashtbl.replace mmacros newid
              { m with P.ma_id = newid; ma_loc = remap_loc m.P.ma_loc })
        pdb.P.pdb_macros)
    pdbs;
  (* Canonicalization.  The accumulators above are deduplicated but their
     id space is first-occurrence order over the input list, so merging
     the same PDBs grouped differently (a parallel tree merge) would
     allocate differently.  This final pass makes the output a pure
     function of the deduplicated content: entities of each kind are
     ordered by their canonical key (unique per kind — it is the dedup
     identity), ids are reassigned densely in that order, every reference
     is rewritten, and unioned reference lists (file includes, namespace
     members, class member-function lists) are sorted.  Source-ordered
     lists (calls, base classes, members) keep their winner's order. *)
  let pre = P.create () in
  pre.P.files <- List.rev_map (Hashtbl.find mfiles) !order_f;
  pre.P.namespaces <- List.rev_map (Hashtbl.find mnamespaces) !order_n;
  pre.P.templates <- List.rev_map (Hashtbl.find mtemplates) !order_te;
  pre.P.classes <- List.rev_map (Hashtbl.find mclasses) !order_c;
  pre.P.routines <- List.rev_map (Hashtbl.find mroutines) !order_r;
  pre.P.types <- List.rev_map (Hashtbl.find mtypes) !order_ty;
  pre.P.pdb_macros <- List.rev_map (Hashtbl.find mmacros) !order_m;
  let sort_by key get_id items =
    List.sort
      (fun a b ->
        let c = String.compare (key a) (key b) in
        if c <> 0 then c else compare (get_id a) (get_id b))
      items
  in
  let sfiles = sort_by file_key (fun f -> f.P.so_id) pre.P.files in
  let snamespaces = sort_by (namespace_key pre) (fun n -> n.P.na_id) pre.P.namespaces in
  let stemplates = sort_by (template_key pre) (fun te -> te.P.te_id) pre.P.templates in
  let sclasses = sort_by (class_key pre) (fun c -> c.P.cl_id) pre.P.classes in
  let sroutines = sort_by (routine_key pre) (fun r -> r.P.ro_id) pre.P.routines in
  let stypes = sort_by (type_key pre) (fun ty -> ty.P.ty_id) pre.P.types in
  let smacros = sort_by macro_key (fun m -> m.P.ma_id) pre.P.pdb_macros in
  let remap_of get_id items =
    let h = Hashtbl.create 64 in
    List.iteri (fun i x -> Hashtbl.replace h (get_id x) (i + 1)) items;
    h
  in
  let fmap = remap_of (fun (f : P.source_file) -> f.P.so_id) sfiles in
  let nmap = remap_of (fun (n : P.namespace_item) -> n.P.na_id) snamespaces in
  let temap = remap_of (fun (te : P.template_item) -> te.P.te_id) stemplates in
  let cmap = remap_of (fun (c : P.class_item) -> c.P.cl_id) sclasses in
  let rmap = remap_of (fun (r : P.routine_item) -> r.P.ro_id) sroutines in
  let tymap = remap_of (fun (ty : P.type_item) -> ty.P.ty_id) stypes in
  let mamap = remap_of (fun (m : P.macro_item) -> m.P.ma_id) smacros in
  let rid h id = if id = 0 then 0 else Option.value ~default:0 (Hashtbl.find_opt h id) in
  let rloc (l : P.loc) =
    if l.P.lfile = 0 then l else { l with P.lfile = rid fmap l.P.lfile }
  in
  let rextent (e : P.extent) =
    { P.hstart = rloc e.P.hstart; hstop = rloc e.P.hstop;
      bstart = rloc e.P.bstart; bstop = rloc e.P.bstop }
  in
  let rtyperef = function
    | P.Tyref id -> P.Tyref (rid tymap id)
    | P.Clref id -> P.Clref (rid cmap id)
  in
  let rparent = function
    | P.Pcl id -> P.Pcl (rid cmap id)
    | P.Pna id -> P.Pna (rid nmap id)
    | P.Pnone -> P.Pnone
  in
  let ritemref = function
    | P.Rso i -> P.Rso (rid fmap i)
    | P.Rro i -> P.Rro (rid rmap i)
    | P.Rcl i -> P.Rcl (rid cmap i)
    | P.Rty i -> P.Rty (rid tymap i)
    | P.Rte i -> P.Rte (rid temap i)
    | P.Rna i -> P.Rna (rid nmap i)
    | P.Rma i -> P.Rma (rid mamap i)
  in
  out.P.files <-
    List.map
      (fun (f : P.source_file) ->
        { P.so_id = rid fmap f.P.so_id; so_name = f.P.so_name;
          so_includes = List.sort compare (List.map (rid fmap) f.P.so_includes) })
      sfiles;
  out.P.namespaces <-
    List.map
      (fun (n : P.namespace_item) ->
        { n with P.na_id = rid nmap n.P.na_id; na_loc = rloc n.P.na_loc;
          na_parent = rparent n.P.na_parent;
          na_members = List.sort compare (List.map ritemref n.P.na_members) })
      snamespaces;
  out.P.templates <-
    List.map
      (fun (te : P.template_item) ->
        { te with P.te_id = rid temap te.P.te_id; te_loc = rloc te.P.te_loc;
          te_parent = rparent te.P.te_parent; te_pos = rextent te.P.te_pos })
      stemplates;
  out.P.classes <-
    List.map
      (fun (c : P.class_item) ->
        { c with P.cl_id = rid cmap c.P.cl_id; cl_loc = rloc c.P.cl_loc;
          cl_parent = rparent c.P.cl_parent;
          cl_templ = Option.map (rid temap) c.P.cl_templ;
          cl_stempl = Option.map (rid temap) c.P.cl_stempl;
          cl_bases = List.map (fun (a, v, b) -> (a, v, rid cmap b)) c.P.cl_bases;
          cl_friends =
            List.map
              (function `Cl i -> `Cl (rid cmap i) | `Ro i -> `Ro (rid rmap i))
              c.P.cl_friends;
          cl_funcs =
            List.sort compare
              (List.map (fun (ro, l) -> (rid rmap ro, rloc l)) c.P.cl_funcs);
          cl_members =
            List.map
              (fun (m : P.member) ->
                { m with P.m_loc = rloc m.P.m_loc; m_type = rtyperef m.P.m_type })
              c.P.cl_members;
          cl_pos = rextent c.P.cl_pos })
      sclasses;
  out.P.routines <-
    List.map
      (fun (r : P.routine_item) ->
        { r with P.ro_id = rid rmap r.P.ro_id; ro_loc = rloc r.P.ro_loc;
          ro_parent = rparent r.P.ro_parent; ro_sig = rtyperef r.P.ro_sig;
          ro_templ = Option.map (rid temap) r.P.ro_templ;
          ro_calls =
            List.map
              (fun (c : P.call) ->
                { c with P.c_callee = rid rmap c.P.c_callee; c_loc = rloc c.P.c_loc })
              r.P.ro_calls;
          ro_spawns =
            List.map
              (fun (s : P.spawn) ->
                { P.sp_callee = rid rmap s.P.sp_callee; sp_loc = rloc s.P.sp_loc;
                  sp_join = Option.map rloc s.P.sp_join })
              r.P.ro_spawns;
          ro_du =
            List.map
              (fun (v : P.du_var) ->
                { v with
                  P.v_defs = List.map rloc v.P.v_defs;
                  v_uses =
                    List.map
                      (fun (u : P.du_use) -> { u with P.u_loc = rloc u.P.u_loc })
                      v.P.v_uses })
              r.P.ro_du;
          ro_pos = rextent r.P.ro_pos })
      sroutines;
  out.P.types <-
    List.map
      (fun (ty : P.type_item) ->
        { ty with P.ty_id = rid tymap ty.P.ty_id; ty_loc = rloc ty.P.ty_loc;
          ty_parent = rparent ty.P.ty_parent;
          ty_info =
            (match ty.P.ty_info with
             | P.Ybuiltin _ | P.Yenum _ | P.Ytparam | P.Yerror -> ty.P.ty_info
             | P.Yptr r -> P.Yptr (rtyperef r)
             | P.Yref r -> P.Yref (rtyperef r)
             | P.Ytref { target; yconst; yvolatile } ->
                 P.Ytref { target = rtyperef target; yconst; yvolatile }
             | P.Yarray { elem; size } -> P.Yarray { elem = rtyperef elem; size }
             | P.Yfunc { rett; args; ellipsis; cqual; exceptions } ->
                 P.Yfunc
                   { rett = rtyperef rett;
                     args = List.map (fun (r, d) -> (rtyperef r, d)) args;
                     ellipsis; cqual;
                     exceptions = Option.map (List.map rtyperef) exceptions }) })
      stypes;
  out.P.pdb_macros <-
    List.map
      (fun (m : P.macro_item) ->
        { m with P.ma_id = rid mamap m.P.ma_id; ma_loc = rloc m.P.ma_loc })
      smacros;
  out

(* ------------------------------------------------------------------ *)
(* Delta merge                                                         *)
(* ------------------------------------------------------------------ *)

module Delta = struct
  (* The merge above is canonical under grouping: merging partial merges
     of any partition of the inputs yields the same bytes as one flat
     merge.  That theorem is what makes a *delta* path sound without any
     per-entity provenance tracking: keep the units partitioned into
     fixed-size groups, memoize each group's partial merge under a content
     key, and an edit to one unit re-merges only that unit's group plus
     the cheap top-level merge over the (already deduplicated) group
     partials.  Removing a stale TU contribution and splicing in the new
     one is exactly "rebuild one group". *)

  type shared = {
    memo : (string, P.t) Hashtbl.t;  (* group content key -> partial merge *)
    mutable last_reused : int;       (* groups served from memo, last merged *)
    mutable last_remerged : int;     (* groups re-merged, last merged *)
  }

  type t = {
    group_size : int;
    units : (string * string * P.t) list;
        (* (unit name, content digest, pdb), sorted by name: a stable
           order so an edit (same name, new content) lands in the same
           group and only that group loses its memo entry *)
    sh : shared;
  }

  let digest = Pdt_pdb.Pdb_digest.of_pdb

  let create ?(group_size = 8) (units : (string * P.t) list) : t =
    let units =
      List.map (fun (n, p) -> (n, digest p, p)) units
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    { group_size = max 1 group_size;
      units;
      sh = { memo = Hashtbl.create 32; last_reused = 0; last_remerged = 0 } }

  let names t = List.map (fun (n, _, _) -> n) t.units

  let mem t name = List.exists (fun (n, _, _) -> n = name) t.units

  (* set and remove share the memo table: groups untouched by the edit
     keep their partial merges across versions *)
  let set t name pdb =
    let d = digest pdb in
    let rec insert = function
      | [] -> [ (name, d, pdb) ]
      | (n, _, _) :: rest when n = name -> (name, d, pdb) :: rest
      | ((n, _, _) as u) :: rest when n > name -> (name, d, pdb) :: u :: rest
      | u :: rest -> u :: insert rest
    in
    { t with units = insert t.units }

  let remove t name =
    { t with units = List.filter (fun (n, _, _) -> n <> name) t.units }

  let chunk size xs =
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if k = size then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 xs

  let group_key members =
    Pdt_util.Hashutil.strings
      ("ductape.delta.group" :: List.map (fun (_, d, _) -> d) members)

  let merged t : P.t =
    Pdt_util.Trace.timed ~cat:"pdb" "pdb.merge_delta" @@ fun () ->
    t.sh.last_reused <- 0;
    t.sh.last_remerged <- 0;
    let groups = chunk t.group_size t.units in
    let keys = List.map group_key groups in
    let partials =
      List.map2
        (fun key members ->
          match Hashtbl.find_opt t.sh.memo key with
          | Some p ->
              t.sh.last_reused <- t.sh.last_reused + 1;
              p
          | None ->
              let p = merge (List.map (fun (_, _, p) -> p) members) in
              Hashtbl.replace t.sh.memo key p;
              t.sh.last_remerged <- t.sh.last_remerged + 1;
              p)
        keys groups
    in
    (* the memo only ever needs the live groups; evict once it has grown
       well past them so a long edit session cannot leak partial merges *)
    if Hashtbl.length t.sh.memo > 4 * List.length groups + 8 then begin
      let live =
        List.map2 (fun k p -> (k, p)) keys partials
      in
      Hashtbl.reset t.sh.memo;
      List.iter (fun (k, p) -> Hashtbl.replace t.sh.memo k p) live
    end;
    merge partials

  let last_reused t = t.sh.last_reused
  let last_remerged t = t.sh.last_remerged
end
