(** A global string-interning pool.

    PDB traffic is dominated by a small vocabulary repeated enormously
    often: item names ([Stack<int>], [method3]), enumerated attribute
    values ([pub], [class], [virt], [C++]), type spellings.  Every parsed
    PDB of a project re-materializes the same strings; interning them makes
    repeats physically shared across all the PDBs a process holds, which
    both shrinks the heap and turns many string equalities into pointer
    equalities downstream.

    The pool is shared by {!Pdt_pdb.Pdb_parse} (every name and enumerated
    attribute it produces) and available to writers and mergers for their
    own literals.  The table is hand-rolled (power-of-two bucket array,
    FNV-1a hash) rather than a [Hashtbl] so {!intern_sub} can look a
    substring up directly in its source buffer: on a hit — the
    overwhelmingly common case for a parser streaming a fixed vocabulary —
    no substring is ever allocated.

    Concurrency: lookups are optimistic and lock-free; only insertions
    (and [clear]) take the mutex.  This is sound under the OCaml 5 memory
    model because the structure is add-only between [clear]s and every
    reachable value is immutable: a racing reader sees the bucket list
    either with or without a concurrent insertion, and in the miss case it
    falls through to the locked path, which re-checks before inserting.
    Hit/miss counters are atomics, so the stats stay coherent without
    putting a lock on the hit path.

    Strings longer than {!max_len} (template bodies, macro texts) are not
    worth pooling and pass through untouched. *)

let max_len = 128

type stats = {
  entries : int;  (** distinct strings resident in the pool *)
  hits : int;     (** intern calls answered by an existing entry *)
  misses : int;   (** intern calls that inserted a new entry *)
}

let initial_buckets = 4096  (* power of two *)

let buckets : string list array ref = ref (Array.make initial_buckets [])
let entry_count = ref 0
let mutex = Mutex.create ()
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0

(* FNV-1a over src[pos, pos+len), masked to a non-negative OCaml int *)
let hash_sub (src : string) pos len =
  let h = ref 0x811c9dc5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get src i)) * 0x01000193
  done;
  !h land max_int

let eq_sub (src : string) pos len (canonical : string) =
  String.length canonical = len
  && (let rec go i =
        i >= len
        || (String.unsafe_get canonical i = String.unsafe_get src (pos + i)
            && go (i + 1))
      in
      go 0)

let rec find_sub bucket src pos len =
  match bucket with
  | [] -> None
  | c :: tl -> if eq_sub src pos len c then Some c else find_sub tl src pos len

(* double the bucket array once load factor exceeds 2; rehashes into a
   fresh array and publishes it with a single assignment (readers see
   either the old or the new array, both complete). Caller holds the
   mutex. *)
let maybe_grow () =
  let b = !buckets in
  let n = Array.length b in
  if !entry_count > 2 * n then begin
    let nb = Array.make (2 * n) [] in
    Array.iter
      (List.iter (fun s ->
           let i = hash_sub s 0 (String.length s) land (Array.length nb - 1) in
           nb.(i) <- s :: nb.(i)))
      b;
    buckets := nb
  end

(* locked slow path: re-check (a racing domain may have inserted the same
   string since the optimistic miss), then insert *)
let insert_sub (src : string) pos len h : string =
  Mutex.lock mutex;
  let b = !buckets in
  let i = h land (Array.length b - 1) in
  let r =
    match find_sub b.(i) src pos len with
    | Some canonical ->
        Atomic.incr hit_count;
        canonical
    | None ->
        Atomic.incr miss_count;
        let s = String.sub src pos len in
        b.(i) <- s :: b.(i);
        incr entry_count;
        maybe_grow ();
        s
  in
  Mutex.unlock mutex;
  r

(** The canonical copy of [src[pos, pos+len)]: physically equal across all
    intern calls with an equal argument.  Allocates only on the first
    sighting of a string; a hit returns the resident copy without taking a
    lock or materializing the substring.  Over-long slices are returned as
    plain substrings and not counted. *)
let intern_sub (src : string) pos len : string =
  if len > max_len then String.sub src pos len
  else begin
    let h = hash_sub src pos len in
    let b = !buckets in
    match find_sub b.(h land (Array.length b - 1)) src pos len with
    | Some canonical ->
        Atomic.incr hit_count;
        canonical
    | None -> insert_sub src pos len h
  end

(** [intern s] = [intern_sub s 0 (String.length s)]. *)
let intern (s : string) : string = intern_sub s 0 (String.length s)

let stats () : stats =
  Mutex.lock mutex;
  let s =
    { entries = !entry_count;
      hits = Atomic.get hit_count;
      misses = Atomic.get miss_count }
  in
  Mutex.unlock mutex;
  s

(** Hits over total lookups; 0.0 before any lookup. *)
let hit_rate () : float =
  let s = stats () in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(** Empty the pool and zero the counters (benchmarks isolate phases). *)
let clear () =
  Mutex.lock mutex;
  buckets := Array.make initial_buckets [];
  entry_count := 0;
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Mutex.unlock mutex
