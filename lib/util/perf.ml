(** Per-phase wall-clock counters for the PDB pipeline — now a facade
    over {!Trace}.

    The build driver and the benches need to know where a build's time
    goes — parse, compile, merge, cache I/O — without wiring a profiler
    through every call site.  Since the tracing layer landed, the
    counters ARE the span stream: {!time} is [Trace.timed], {!record} is
    [Trace.count], and {!snapshot} reads the shared counter table that
    every span updates.  [pdbbuild --stats] therefore reports, by
    construction, the same totals as a [--trace] file of the same run —
    the two can never disagree.

    The clock is monotonic (bechamel's CLOCK_MONOTONIC stub; the old
    [Unix.gettimeofday] base could step backwards under NTP and produce
    negative durations).

    [pdbbuild --stats] prints {!report}; bench B7 reads {!snapshot}. *)

let now_ns () : int = Trace.now_ns ()

(** Add one timed call of [ns] nanoseconds to phase [name]. *)
let record (name : string) (ns : int) : unit = Trace.count ~cat:"perf" name ns

(** Run [f ()] and charge its wall time to phase [name]; exceptions
    propagate but the time spent is still recorded. *)
let time (name : string) (f : unit -> 'a) : 'a = Trace.timed ~cat:"perf" name f

(** All counters as [(phase, calls, total_ns)], sorted by phase name. *)
let snapshot () : (string * int * int) list = Trace.counters ()

let reset () = Trace.reset_counters ()

(** Human-readable table: one line per phase with calls, total and mean
    milliseconds.  Empty string when nothing was recorded. *)
let report () : string =
  match snapshot () with
  | [] -> ""
  | rows ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "%-16s %8s %12s %12s\n" "phase" "calls" "total ms" "mean ms");
      List.iter
        (fun (name, calls, ns) ->
          let ms = float_of_int ns /. 1e6 in
          Buffer.add_string b
            (Printf.sprintf "%-16s %8d %12.3f %12.3f\n" name calls ms
               (ms /. float_of_int (max 1 calls))))
        rows;
      Buffer.contents b
