(** Per-phase wall-clock counters for the PDB pipeline.

    The build driver and the benches need to know where a build's time
    goes — parse, compile, merge, cache I/O — without wiring a profiler
    through every call site.  Phases are named dynamically; each counter
    accumulates call count and total nanoseconds.  Counters are global and
    mutex-guarded so worker domains report into the same table; the
    overhead is two clock reads and one short critical section per timed
    call, which is noise at the granularity timed here (whole files, whole
    merges).

    [pdbbuild --stats] prints {!report}; bench B7 reads {!snapshot}. *)

type counter = { mutable calls : int; mutable ns : int }

let table : (string, counter) Hashtbl.t = Hashtbl.create 16
let mutex = Mutex.create ()

let now_ns () : int = int_of_float (Unix.gettimeofday () *. 1e9)

(** Add one timed call of [ns] nanoseconds to phase [name]. *)
let record (name : string) (ns : int) : unit =
  Mutex.lock mutex;
  (match Hashtbl.find_opt table name with
   | Some c ->
       c.calls <- c.calls + 1;
       c.ns <- c.ns + ns
   | None -> Hashtbl.replace table name { calls = 1; ns });
  Mutex.unlock mutex

(** Run [f ()] and charge its wall time to phase [name]; exceptions
    propagate but the time spent is still recorded. *)
let time (name : string) (f : unit -> 'a) : 'a =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> record name (now_ns () - t0)) f

(** All counters as [(phase, calls, total_ns)], sorted by phase name. *)
let snapshot () : (string * int * int) list =
  Mutex.lock mutex;
  let rows = Hashtbl.fold (fun k c acc -> (k, c.calls, c.ns) :: acc) table [] in
  Mutex.unlock mutex;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex

(** Human-readable table: one line per phase with calls, total and mean
    milliseconds.  Empty string when nothing was recorded. *)
let report () : string =
  match snapshot () with
  | [] -> ""
  | rows ->
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "%-16s %8s %12s %12s\n" "phase" "calls" "total ms" "mean ms");
      List.iter
        (fun (name, calls, ns) ->
          let ms = float_of_int ns /. 1e6 in
          Buffer.add_string b
            (Printf.sprintf "%-16s %8d %12.3f %12.3f\n" name calls ms
               (ms /. float_of_int (max 1 calls))))
        rows;
      Buffer.contents b
