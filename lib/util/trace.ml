(** Structured tracing for the whole pipeline: nestable spans with
    categories and key/value args, recorded per domain and exported as a
    Chrome [trace_event] JSON (one track per worker domain, loadable in
    chrome://tracing or Perfetto) or as a TAU-style flat profile.

    Design constraints, in order:

    - {b Disabled tracing is free.}  [span] starts with a single load of
      an [Atomic.t bool]; when the flag is off it tail-calls the thunk —
      no clock read, no allocation.  Call sites that build an args list
      must guard with {!on} so the list is never allocated off-trace.
    - {b No lock on the hot path.}  Each domain appends to its own
      buffer, reached through [Domain.DLS]; the registry mutex is taken
      only when a domain joins a trace (once per domain per trace) and at
      export.  Domain ids are never reused within a process, so one
      buffer maps to one track.
    - {b Counters and spans cannot disagree.}  {!Perf} is a facade over
      {!timed}/{!count} below: the counter update and the B/E events are
      computed from the same two clock reads, so [--stats] totals are by
      construction the sums of the spans in the trace.

    The clock is monotonic.  This OCaml's [Unix] module predates
    [Unix.clock_gettime], so we use bechamel's [Monotonic_clock] stub
    (CLOCK_MONOTONIC, [@@noalloc], int64 nanoseconds) — already a test
    dependency of this project, no new package. *)

type arg = Str of string | Int of int | Bool of bool

type ph = B | E | I

type event = {
  ph : ph;
  name : string;
  cat : string;
  ts : int;  (** monotonic ns, absolute; exported relative to trace start *)
  args : (string * arg) list;
}

let now_ns () : int = Int64.to_int (Monotonic_clock.now ())

(* --- per-domain buffers -------------------------------------------- *)

(* Bound on events recorded per domain per trace: a runaway traced loop
   must not eat the heap.  ~56 bytes/event puts the cap near 100 MB. *)
let max_events_per_domain = 2_000_000

type dbuf = {
  tid : int;
  gen : int;
  mutable evs : event list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
}

let enabled : bool Atomic.t = Atomic.make false
let generation : int Atomic.t = Atomic.make 0
let t0 : int Atomic.t = Atomic.make 0
let registry : dbuf list ref = ref []
let reg_mutex = Mutex.create ()

let dls_key : dbuf option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** The calling domain's buffer for the current trace, registering a
    fresh one if the domain has not emitted since {!start}. *)
let buffer () : dbuf =
  let cell = Domain.DLS.get dls_key in
  let g = Atomic.get generation in
  match !cell with
  | Some b when b.gen = g -> b
  | _ ->
      let b =
        { tid = (Domain.self () :> int); gen = g; evs = []; n = 0; dropped = 0 }
      in
      Mutex.lock reg_mutex;
      registry := b :: !registry;
      Mutex.unlock reg_mutex;
      cell := Some b;
      b

let emit (ev : event) : unit =
  let b = buffer () in
  if b.n < max_events_per_domain then begin
    b.evs <- ev :: b.evs;
    b.n <- b.n + 1
  end
  else b.dropped <- b.dropped + 1

(* --- counters (the Perf substrate) --------------------------------- *)

type counter = { mutable calls : int; mutable ns : int }

let ctable : (string, counter) Hashtbl.t = Hashtbl.create 16
let cmutex = Mutex.create ()

let counter_add (name : string) (ns : int) : unit =
  Mutex.lock cmutex;
  (match Hashtbl.find_opt ctable name with
   | Some c ->
       c.calls <- c.calls + 1;
       c.ns <- c.ns + ns
   | None -> Hashtbl.replace ctable name { calls = 1; ns });
  Mutex.unlock cmutex

(** All counters as [(name, calls, total_ns)], sorted by name. *)
let counters () : (string * int * int) list =
  Mutex.lock cmutex;
  let rows = Hashtbl.fold (fun k c acc -> (k, c.calls, c.ns) :: acc) ctable [] in
  Mutex.unlock cmutex;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows

let reset_counters () =
  Mutex.lock cmutex;
  Hashtbl.reset ctable;
  Mutex.unlock cmutex

(* --- recording API ------------------------------------------------- *)

let on () = Atomic.get enabled

(** Run [f] inside a span.  Off-trace this is one atomic load and a tail
    call; on-trace it brackets [f] with B/E events and charges the
    duration to the [name] counter from the same timestamps. *)
let span ?(args = []) ~cat (name : string) (f : unit -> 'a) : 'a =
  if not (Atomic.get enabled) then f ()
  else begin
    let ts = now_ns () in
    emit { ph = B; name; cat; ts; args };
    Fun.protect
      ~finally:(fun () ->
        let te = now_ns () in
        counter_add name (te - ts);
        if Atomic.get enabled then emit { ph = E; name; cat; ts = te; args = [] })
      f
  end

(** Like {!span} but the counter is updated even when tracing is off —
    this is what [Perf.time] compiles to, so [--stats] works untraced and
    agrees with the trace when both are on. *)
let timed ?(args = []) ~cat (name : string) (f : unit -> 'a) : 'a =
  let ts = now_ns () in
  let emitted = Atomic.get enabled in
  if emitted then emit { ph = B; name; cat; ts; args };
  Fun.protect
    ~finally:(fun () ->
      let te = now_ns () in
      counter_add name (te - ts);
      if emitted && Atomic.get enabled then
        emit { ph = E; name; cat; ts = te; args = [] })
    f

(** Point event on the calling domain's track (cache hit, quarantine…). *)
let instant ?(args = []) ~cat (name : string) : unit =
  if Atomic.get enabled then
    emit { ph = I; name; cat; ts = now_ns (); args }

(** Bump counter [name] by [ns] and mark the occurrence on the track.
    [Perf.record] compiles to this. *)
let count ?(args = []) ~cat (name : string) (ns : int) : unit =
  counter_add name ns;
  if Atomic.get enabled then
    emit { ph = I; name; cat; ts = now_ns (); args }

(* --- trace lifecycle ----------------------------------------------- *)

(** Begin a new trace: previous buffers are detached (their domains
    re-register lazily via the generation check) and recording starts. *)
let start () : unit =
  Mutex.lock reg_mutex;
  registry := [];
  Mutex.unlock reg_mutex;
  Atomic.incr generation;
  Atomic.set t0 (now_ns ());
  Atomic.set enabled true

let stop () : unit = Atomic.set enabled false

(** Per-track event streams, oldest event first, tracks sorted by tid.
    Call after {!stop} (worker domains must have quiesced). *)
let tracks () : (int * event list) list =
  Mutex.lock reg_mutex;
  let bufs = !registry in
  Mutex.unlock reg_mutex;
  bufs
  |> List.map (fun b -> (b.tid, List.rev b.evs))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dropped_events () : int =
  Mutex.lock reg_mutex;
  let n = List.fold_left (fun acc b -> acc + b.dropped) 0 !registry in
  Mutex.unlock reg_mutex;
  n

(* --- Chrome trace_event export ------------------------------------- *)

let add_args_json (b : Buffer.t) (args : (string * arg) list) : unit =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Json.escape_to b k;
      Buffer.add_char b ':';
      match v with
      | Str s -> Json.escape_to b s
      | Int n -> Buffer.add_string b (string_of_int n)
      | Bool v -> Buffer.add_string b (if v then "true" else "false"))
    args;
  Buffer.add_char b '}'

(** The recorded trace as Chrome trace_event JSON.  Timestamps are
    microseconds relative to {!start}; pid is constant 1; tid is the
    domain id, with a [thread_name] metadata record per track so
    Perfetto labels the rows [domain-N]. *)
let chrome_json () : string =
  let base = Atomic.get t0 in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  let tracks = tracks () in
  List.iter
    (fun (tid, _) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":\"domain-%d\"}}"
           tid tid))
    tracks;
  List.iter
    (fun (tid, evs) ->
      List.iter
        (fun ev ->
          sep ();
          let ph = match ev.ph with B -> "B" | E -> "E" | I -> "i" in
          Buffer.add_string b
            (Printf.sprintf "{\"ph\":%S,\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
               ph tid (float_of_int (ev.ts - base) /. 1e3));
          Buffer.add_string b "\"name\":";
          Json.escape_to b ev.name;
          Buffer.add_string b ",\"cat\":";
          Json.escape_to b ev.cat;
          (match ev.ph with
           | E -> ()
           | B | I ->
               Buffer.add_string b ",\"args\":";
               add_args_json b ev.args);
          (match ev.ph with
           | I -> Buffer.add_string b ",\"s\":\"t\""
           | B | E -> ());
          Buffer.add_char b '}')
        evs)
    tracks;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* --- flat profile (TAU pprof dogfood) ------------------------------ *)

type profile_row = {
  pname : string;
  calls : int;
  child_calls : int;
  exclusive_ns : int64;
  inclusive_ns : int64;
}

type frame = {
  fname : string;
  fstart : int;
  mutable child_ns : int;
  mutable fchild_calls : int;
}

(** Flat profile aggregated over all tracks: per span name, call count,
    direct-child call count, exclusive and inclusive nanoseconds.
    Recursive spans double-count inclusive time, as flat profiles do.
    Sorted by exclusive time, largest first. *)
let profile_rows () : profile_row list =
  let agg : (string, profile_row ref) Hashtbl.t = Hashtbl.create 16 in
  let add name ~incl ~excl ~child_calls =
    let r =
      match Hashtbl.find_opt agg name with
      | Some r -> r
      | None ->
          let r =
            ref { pname = name; calls = 0; child_calls = 0;
                  exclusive_ns = 0L; inclusive_ns = 0L }
          in
          Hashtbl.replace agg name r;
          r
    in
    r :=
      { !r with
        calls = !r.calls + 1;
        child_calls = !r.child_calls + child_calls;
        exclusive_ns = Int64.add !r.exclusive_ns (Int64.of_int excl);
        inclusive_ns = Int64.add !r.inclusive_ns (Int64.of_int incl) }
  in
  List.iter
    (fun (_tid, evs) ->
      let stack = ref [] in
      List.iter
        (fun ev ->
          match ev.ph with
          | I -> ()
          | B ->
              stack :=
                { fname = ev.name; fstart = ev.ts; child_ns = 0;
                  fchild_calls = 0 }
                :: !stack
          | E -> (
              match !stack with
              | [] -> ()  (* unbalanced E: trace toggled mid-span *)
              | f :: rest ->
                  stack := rest;
                  let incl = ev.ts - f.fstart in
                  let excl = max 0 (incl - f.child_ns) in
                  add f.fname ~incl ~excl ~child_calls:f.fchild_calls;
                  (match rest with
                   | p :: _ ->
                       p.child_ns <- p.child_ns + incl;
                       p.fchild_calls <- p.fchild_calls + 1
                   | [] -> ())))
        evs)
    (tracks ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) agg []
  |> List.sort (fun a b -> compare b.exclusive_ns a.exclusive_ns)

(* --- span tree (for shape-determinism tests) ----------------------- *)

type node = {
  nname : string;
  ncat : string;
  nargs : (string * arg) list;
  children : node list;
}

(** The recorded spans of each track as a forest, ignoring timestamps —
    this is what "tree shape" means in the determinism tests. *)
let forest () : (int * node list) list =
  let build evs =
    (* fold the B/E stream with an explicit stack of (node info, reversed
       children so far) *)
    let rec go evs stack roots =
      match evs with
      | [] -> List.rev roots
      | ev :: evs -> (
          match ev.ph with
          | I -> go evs stack roots
          | B -> go evs ((ev, ref []) :: stack) roots
          | E -> (
              match stack with
              | [] -> go evs [] roots
              | (bev, kids) :: rest ->
                  let n =
                    { nname = bev.name; ncat = bev.cat; nargs = bev.args;
                      children = List.rev !kids }
                  in
                  (match rest with
                   | (_, pkids) :: _ ->
                       pkids := n :: !pkids;
                       go evs rest roots
                   | [] -> go evs [] (n :: roots))))
    in
    go evs [] []
  in
  List.map (fun (tid, evs) -> (tid, build evs)) (tracks ())
