(** Stable content hashing.

    The incremental build cache and the PDB digest need a hash that is
    stable across processes and OCaml versions, so [Hashtbl.hash] (whose
    output is implementation-defined) is out.  We use the stdlib [Digest]
    (MD5) rendered as hex — collision resistance is ample for cache keys
    and equality fingerprints; nothing here is security-sensitive. *)

let string (s : string) : string = Digest.to_hex (Digest.string s)

(** Hash a list of labelled parts into one key.  Parts are length-prefixed
    before concatenation so that [["ab";"c"]] and [["a";"bc"]] (or a part
    containing a separator) cannot collide structurally. *)
let strings (parts : string list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  string (Buffer.contents b)
