(** Resource governor: configurable budgets for the front end.

    Pathological inputs — deeply nested expressions, runaway template
    instantiation, macro-expansion blowup, include cycles, preprocessor
    token explosions — must never turn into stack overflows or hangs.
    Every recursive or amplifying phase of the front end charges its work
    against a budget here; exceeding one raises {!Exceeded}, which the
    owning driver converts into a recorded [Fatal] diagnostic and a
    partial result (see {!Diag.fatal_note}).

    Budgets are per translation unit: create one {!t} per TU.  The
    defaults are far beyond anything legitimate code reaches, so well-formed
    programs never observe the governor. *)

type budgets = {
  max_include_depth : int;   (** nested [#include] chain length *)
  max_macro_depth : int;     (** nested macro-expansion depth *)
  max_tokens : int;          (** preprocessor output + expansion tokens per TU *)
  max_parse_depth : int;     (** parser recursion (nested exprs/stmts/types) *)
  max_instantiation_depth : int;  (** nested template instantiations *)
  max_errors : int;          (** parser error-recovery attempts per TU *)
}

let default_budgets =
  { max_include_depth = 64;
    max_macro_depth = 256;
    max_tokens = 5_000_000;
    max_parse_depth = 400;
    max_instantiation_depth = 128;
    max_errors = 64 }

exception Exceeded of { limit : string; budget : int }
(** [limit] is the human-readable budget name, e.g. "parser recursion
    depth"; [budget] its configured value. *)

type t = {
  budgets : budgets;
  mutable macro_depth : int;
  mutable tokens : int;
  mutable parse_depth : int;
  mutable inst_depth : int;
}

let create ?(budgets = default_budgets) () =
  { budgets; macro_depth = 0; tokens = 0; parse_depth = 0; inst_depth = 0 }

let default () = create ()

let exceeded name budget = raise (Exceeded { limit = name; budget })

let describe = function
  | Exceeded { limit; budget } ->
      Printf.sprintf "%s limit exceeded (budget %d)" limit budget
  | _ -> invalid_arg "Limits.describe"

(* -------- macro expansion -------- *)

let enter_macro l =
  l.macro_depth <- l.macro_depth + 1;
  if l.macro_depth > l.budgets.max_macro_depth then begin
    l.macro_depth <- l.macro_depth - 1;
    exceeded "macro expansion depth" l.budgets.max_macro_depth
  end

let exit_macro l = l.macro_depth <- l.macro_depth - 1

(* -------- per-TU token count (preprocessor output + expansions) -------- *)

let count_tokens l n =
  l.tokens <- l.tokens + n;
  if l.tokens > l.budgets.max_tokens then
    exceeded "per-TU token count" l.budgets.max_tokens

(* -------- parser recursion -------- *)

let enter_parse l =
  l.parse_depth <- l.parse_depth + 1;
  if l.parse_depth > l.budgets.max_parse_depth then begin
    l.parse_depth <- l.parse_depth - 1;
    exceeded "parser recursion depth" l.budgets.max_parse_depth
  end

let exit_parse l = l.parse_depth <- l.parse_depth - 1

(* -------- template instantiation -------- *)

let enter_instantiation l =
  l.inst_depth <- l.inst_depth + 1;
  if l.inst_depth > l.budgets.max_instantiation_depth then begin
    l.inst_depth <- l.inst_depth - 1;
    exceeded "template instantiation depth" l.budgets.max_instantiation_depth
  end

let exit_instantiation l = l.inst_depth <- l.inst_depth - 1

(* -------- CLI support: "name=value" budget overrides -------- *)

let budget_names =
  [ "include-depth"; "macro-depth"; "tokens"; "parse-depth";
    "instantiation-depth"; "errors" ]

(** Apply a ["name=value"] override (the [--limit] CLI flag syntax).
    Returns [Error msg] on an unknown name or a malformed value. *)
let set_budget (b : budgets) (spec : string) : (budgets, string) result =
  match String.index_opt spec '=' with
  | None -> Result.Error (Printf.sprintf "malformed limit '%s' (want name=value)" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let value = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt value with
      | None -> Result.Error (Printf.sprintf "limit '%s': '%s' is not an integer" name value)
      | Some n when n < 1 -> Result.Error (Printf.sprintf "limit '%s': value must be positive" name)
      | Some n -> (
          match name with
          | "include-depth" -> Ok { b with max_include_depth = n }
          | "macro-depth" -> Ok { b with max_macro_depth = n }
          | "tokens" -> Ok { b with max_tokens = n }
          | "parse-depth" -> Ok { b with max_parse_depth = n }
          | "instantiation-depth" -> Ok { b with max_instantiation_depth = n }
          | "errors" -> Ok { b with max_errors = n }
          | _ ->
              Result.Error
                (Printf.sprintf "unknown limit '%s' (known: %s)" name
                   (String.concat ", " budget_names))))
