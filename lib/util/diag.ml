(** Diagnostics: errors and warnings accumulated by the front end.

    The front end never prints directly; it records diagnostics in an
    {!engine} owned by the driver, so that library users (tests, tools) can
    inspect them.  A fatal error raises {!Error} after being recorded. *)

type severity = Warning | Error | Fatal

type diagnostic = {
  severity : severity;
  loc : Srcloc.t;
  message : string;
}

exception Error of diagnostic

type engine = {
  mutable diags : diagnostic list;  (* reverse order *)
  mutable error_count : int;
  mutable warning_count : int;
}

let create () = { diags = []; error_count = 0; warning_count = 0 }

let record eng d =
  eng.diags <- d :: eng.diags;
  (match d.severity with
   | Warning -> eng.warning_count <- eng.warning_count + 1
   | Error | Fatal -> eng.error_count <- eng.error_count + 1)

let warn eng loc fmt =
  Fmt.kstr (fun message -> record eng { severity = Warning; loc; message }) fmt

let error eng loc fmt =
  Fmt.kstr (fun message -> record eng { severity = Error; loc; message }) fmt

(** Record a fatal diagnostic and raise {!Error}. *)
let fatal eng loc fmt =
  Fmt.kstr
    (fun message ->
      let d = { severity = Fatal; loc; message } in
      record eng d;
      raise (Error d))
    fmt

(** Record a [Fatal] diagnostic {e without} raising — for resource-limit
    breaches, where the driver abandons one construct but keeps the
    translation unit going (degraded compilation). *)
let fatal_note eng loc fmt =
  Fmt.kstr (fun message -> record eng { severity = Fatal; loc; message }) fmt

let diagnostics eng = List.rev eng.diags

let error_count eng = eng.error_count
let warning_count eng = eng.warning_count
let has_errors eng = eng.error_count > 0

let severity_to_string = function
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal error"

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a: %s: %s" Srcloc.pp d.loc (severity_to_string d.severity)
    d.message

let to_string eng =
  String.concat "\n"
    (List.map (fun d -> Fmt.str "%a" pp_diagnostic d) (diagnostics eng))
