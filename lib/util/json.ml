(** Minimal JSON: just enough to print and re-parse Chrome trace files.

    The toolchain has no JSON dependency, and pulling one in for a trace
    exporter would be out of proportion — the trace_event format uses a
    small JSON subset (objects, arrays, strings, numbers, booleans).  The
    printer lives with {!Trace}; this module owns escaping and a strict
    recursive-descent parser used by [tracecheck] and the trace
    well-formedness tests to prove the exporter's output round-trips. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Append [s] to [b] as a JSON string literal, with escaping. *)
let escape_to (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  escape_to b s;
  Buffer.contents b

(* --- parsing ------------------------------------------------------- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

let parse_string_raw c : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if c.pos >= String.length c.src then fail c "unterminated escape";
        let e = c.src.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' -> Buffer.add_char b '"'; loop ()
        | '\\' -> Buffer.add_char b '\\'; loop ()
        | '/' -> Buffer.add_char b '/'; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'u' ->
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            (* non-BMP escapes don't occur in our traces; encode BMP as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> fail c "bad escape")
    | c when Char.code c < 0x20 -> fail { src = ""; pos = 0 } "raw control char in string"
    | ch -> Buffer.add_char b ch; loop ()
  in
  loop ()

let parse_number c : float =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c "expected number";
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail c (Printf.sprintf "bad number %S" s)

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string_raw c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; members ((key, v) :: acc)
          | Some '}' -> c.pos <- c.pos + 1; List.rev ((key, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; elems (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; List.rev ((v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> Num (parse_number c)

(** Parse a complete JSON document; trailing whitespace only. *)
let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- accessors (total, for validators) ----------------------------- *)

let member (key : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_num_opt = function Num f -> Some f | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
