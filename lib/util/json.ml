(** Minimal JSON: printing, escaping, and a strict parser.

    The toolchain has no JSON dependency, and pulling one in for a trace
    exporter would be out of proportion — the trace_event format uses a
    small JSON subset (objects, arrays, strings, numbers, booleans).  The
    Chrome-trace printer lives with {!Trace}; this module owns escaping, a
    generic printer ({!to_string}, used by the pdbd wire protocol), and a
    strict recursive-descent parser used by [tracecheck], the trace
    well-formedness tests, and the pdbd request decoder.

    Since pdbd, this parser sits on a trust boundary: every byte a daemon
    client sends goes through {!parse}.  Hence the strictness guarantees:
    \uXXXX escapes take exactly four hex digits (no OCaml int-literal
    leniency), surrogate pairs combine into the astral code point and lone
    surrogates are rejected rather than emitted as invalid UTF-8, raw
    control characters report their real offset, and nesting depth is
    bounded ({!default_max_depth}) so a ["[[[[..."] bomb fails with
    [Error] instead of a stack overflow. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Append [s] to [b] as a JSON string literal, with escaping. *)
let escape_to (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  escape_to b s;
  Buffer.contents b

(* --- parsing ------------------------------------------------------- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" lit)

(* Exactly four hex digits — int_of_string would also admit OCaml
   literal syntax like "1_23" or a sign, which is not JSON. *)
let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d = hex_digit c.src.[c.pos + i] in
    if d < 0 then fail c "bad \\u escape (need 4 hex digits)";
    v := (!v lsl 4) lor d
  done;
  c.pos <- c.pos + 4;
  !v

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_raw c : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if c.pos >= String.length c.src then fail c "unterminated escape";
        let e = c.src.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' -> Buffer.add_char b '"'; loop ()
        | '\\' -> Buffer.add_char b '\\'; loop ()
        | '/' -> Buffer.add_char b '/'; loop ()
        | 'n' -> Buffer.add_char b '\n'; loop ()
        | 'r' -> Buffer.add_char b '\r'; loop ()
        | 't' -> Buffer.add_char b '\t'; loop ()
        | 'b' -> Buffer.add_char b '\b'; loop ()
        | 'f' -> Buffer.add_char b '\012'; loop ()
        | 'u' ->
            let code = parse_hex4 c in
            if code >= 0xDC00 && code <= 0xDFFF then
              fail c "lone low surrogate"
            else if code >= 0xD800 && code <= 0xDBFF then begin
              (* a high surrogate must be followed by \uDC00–\uDFFF; the
                 pair combines into one astral code point (UTF-8, 4 bytes) *)
              if
                c.pos + 2 > String.length c.src
                || c.src.[c.pos] <> '\\'
                || c.src.[c.pos + 1] <> 'u'
              then fail c "lone high surrogate";
              c.pos <- c.pos + 2;
              let low = parse_hex4 c in
              if low < 0xDC00 || low > 0xDFFF then
                fail c "high surrogate not followed by low surrogate";
              add_utf8 b
                (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
            end
            else add_utf8 b code;
            loop ()
        | _ -> fail c "bad escape")
    | ch when Char.code ch < 0x20 ->
        c.pos <- c.pos - 1;
        fail c "raw control char in string"
    | ch -> Buffer.add_char b ch; loop ()
  in
  loop ()

let parse_number c : float =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c "expected number";
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail c (Printf.sprintf "bad number %S" s)

(** Containers deeper than this fail to parse.  Nothing legitimate — a
    trace file, a pdbd request — nests anywhere near this deep, while an
    unbounded recursive descent would let one malicious line of brackets
    overflow the stack. *)
let default_max_depth = 512

let rec parse_value c depth : t =
  if depth <= 0 then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string_raw c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth - 1) in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; members ((key, v) :: acc)
          | Some '}' -> c.pos <- c.pos + 1; List.rev ((key, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c (depth - 1) in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; elems (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; List.rev ((v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> Num (parse_number c)

(** Parse a complete JSON document; trailing whitespace only. *)
let parse ?(max_depth = default_max_depth) (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c max_depth with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- printing ------------------------------------------------------ *)

(** Shortest decimal form that parses back to exactly [f]; integral
    values (the common case: ids, counts, generations) print with no
    fractional part, so wire replies and goldens stay stable. *)
let num_to_string (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write_to (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s -> escape_to b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write_to b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          write_to b v)
        kvs;
      Buffer.add_char b '}'

(** One-line canonical rendering: keys in construction order, no
    whitespace.  [parse (to_string v)] returns [Ok v] for any value whose
    numbers round-trip (all of ours do). *)
let to_string (j : t) : string =
  let b = Buffer.create 256 in
  write_to b j;
  Buffer.contents b

(* --- accessors (total, for validators) ----------------------------- *)

let member (key : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_num_opt = function Num f -> Some f | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
