(** Deterministic fault injection for robustness testing.

    The build pipeline claims to survive torn cache writes, vanished
    files, flaky workers and corrupt entries.  Claims like that rot unless
    something exercises them, so the pipeline's I/O layers each declare a
    named {e injection site} ([Vfs.read_raw] → ["vfs.read"], the cache
    writer → ["cache.write.torn"] / ["cache.write.crash"], the scheduler's
    worker loop → ["scheduler.worker"], …) and ask this module, on every
    occurrence, whether that occurrence should fail.

    The decision is {e seeded and counter-based}: site [s]'s [n]-th
    occurrence faults iff [digest (seed, s, n)] falls under the configured
    rate, so a given [(seed, rate, sites)] triple names one reproducible
    injection schedule — the robustness matrix in [test_faults.ml] sweeps
    hundreds of them and a failing one can be replayed by number.  (With
    several worker domains the interleaving of occurrences on a shared
    site varies across runs; the {e set} of decisions per occurrence index
    is still fixed, which is what the matrix invariants need.)

    Injection is process-global and off by default; the disabled fast
    path is a single [Atomic.get] and a branch, so production builds pay
    nothing measurable ([pdbbuild --stats] under bench B7 pins this). *)

exception Injected of string
(** Raised by {!check} at a scheduled occurrence.  The payload is
    ["site#occurrence"], which names the exact injection for diagnostics.
    The build driver treats this (like [Sys_error]) as a {e transient}
    failure: retried up to the per-unit budget, unlike deterministic
    front-end errors which fail fast. *)

type config = {
  seed : int;           (** schedule selector; same seed → same schedule *)
  rate_ppm : int;       (** per-occurrence fault probability, parts/million *)
  sites : string list option;  (** [None] = every site may fault *)
  max_faults : int;     (** total injection budget; [max_int] = unbounded *)
}

let enabled = Atomic.make false

let mutex = Mutex.create ()
let current : config option ref = ref None
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 8
let injected = ref 0

(** Turn injection on.  [rate] is the per-occurrence fault probability in
    [0, 1]; [sites] restricts injection to the named sites; [max_faults]
    bounds the total number of injections (handy to fault exactly the
    first occurrence: [~rate:1.0 ~max_faults:1]). *)
let arm ?sites ?(max_faults = max_int) ~seed ~rate () =
  Mutex.lock mutex;
  current :=
    Some { seed; rate_ppm = int_of_float (rate *. 1e6); sites; max_faults };
  Hashtbl.reset counters;
  injected := 0;
  Atomic.set enabled true;
  Mutex.unlock mutex

(** Turn injection off and forget the schedule (counters included). *)
let disarm () =
  Atomic.set enabled false;
  Mutex.lock mutex;
  current := None;
  Hashtbl.reset counters;
  injected := 0;
  Mutex.unlock mutex

let armed () = Atomic.get enabled

(** Faults injected since the last {!arm}. *)
let injected_count () =
  Mutex.lock mutex;
  let n = !injected in
  Mutex.unlock mutex;
  n

(* The per-occurrence decision must be stable across processes and OCaml
   versions (schedules are replayed by seed), so it goes through Digest
   (MD5) like the cache keys do, not Hashtbl.hash.  Armed-only cost. *)
let decides c site n =
  let d = Digest.string (Printf.sprintf "%d:%s:%d" c.seed site n) in
  let v =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  v mod 1_000_000 < c.rate_ppm

(* Occurrence index and decision for one site hit; returns the payload to
   raise/report when this occurrence is scheduled. *)
let hit (site : string) : string option =
  Mutex.lock mutex;
  let r =
    match !current with
    | None -> None
    | Some c ->
        let site_armed =
          match c.sites with None -> true | Some l -> List.mem site l
        in
        if not site_armed then None
        else begin
          let n =
            match Hashtbl.find_opt counters site with
            | Some r ->
                incr r;
                !r
            | None ->
                Hashtbl.replace counters site (ref 1);
                1
          in
          if !injected < c.max_faults && decides c site n then begin
            incr injected;
            Some (Printf.sprintf "%s#%d" site n)
          end
          else None
        end
  in
  Mutex.unlock mutex;
  r

(** [should site] — did the schedule pick this occurrence?  The
    non-raising variant, for sites that act on the decision themselves
    (e.g. the cache writer truncating its own output to simulate a torn
    write).  Counts one occurrence of [site] when armed. *)
let should (site : string) : bool =
  if not (Atomic.get enabled) then false else hit site <> None

(** [check site] — raise {!Injected} if the schedule picked this
    occurrence, else return unit.  The raising variant, for sites where a
    real fault would surface as an exception (a failed read, a dying
    worker). *)
let check (site : string) : unit =
  if Atomic.get enabled then
    match hit site with None -> () | Some payload -> raise (Injected payload)

(** Transient-failure test for retry policies: faults this module injects
    and the I/O errors it simulates, as opposed to deterministic
    diagnostics that would recur on every attempt. *)
let is_transient = function
  | Injected _ | Sys_error _ -> true
  | _ -> false

(** Run [f] under an armed schedule and always disarm, even on raise. *)
let with_faults ?sites ?max_faults ~seed ~rate (f : unit -> 'a) : 'a =
  arm ?sites ?max_faults ~seed ~rate ();
  Fun.protect ~finally:disarm f
