(** Deterministic fault injection for robustness testing.

    The build pipeline claims to survive torn cache writes, vanished
    files, flaky workers and corrupt entries.  Claims like that rot unless
    something exercises them, so the pipeline's I/O layers each declare a
    named {e injection site} ([Vfs.read_raw] → ["vfs.read"], the cache
    writer → ["cache.write.torn"] / ["cache.write.crash"], the scheduler's
    worker loop → ["scheduler.worker"], …) and ask this module, on every
    occurrence, whether that occurrence should fail.

    The decision is {e seeded and counter-based}: site [s]'s [n]-th
    occurrence faults iff [digest (seed, s, n)] falls under the configured
    rate, so a given [(seed, rate, sites)] triple names one reproducible
    injection schedule — the robustness matrix in [test_faults.ml] sweeps
    hundreds of them and a failing one can be replayed by number.  (With
    several worker domains the interleaving of occurrences on a shared
    site varies across runs; the {e set} of decisions per occurrence index
    is still fixed, which is what the matrix invariants need.)

    Injection is process-global and off by default; the disabled fast
    path is a single [Atomic.get] and a branch, so production builds pay
    nothing measurable ([pdbbuild --stats] under bench B7 pins this). *)

exception Injected of string
(** Raised by {!check} at a scheduled occurrence.  The payload is
    ["site#occurrence"], which names the exact injection for diagnostics.
    The build driver treats this (like [Sys_error]) as a {e transient}
    failure: retried up to the per-unit budget, unlike deterministic
    front-end errors which fail fast. *)

type config = {
  seed : int;           (** schedule selector; same seed → same schedule *)
  rate_ppm : int;       (** per-occurrence fault probability, parts/million *)
  sites : string list option;  (** [None] = every site may fault *)
  max_faults : int;     (** total injection budget; [max_int] = unbounded *)
  skip : int;           (** occurrence-index offset: site occurrence [n]
                            is judged as occurrence [n + skip].  Lets a
                            respawned farm worker — whose counters
                            necessarily restart at zero — continue the
                            seeded stream instead of replaying the exact
                            prefix that killed its predecessor *)
}

let enabled = Atomic.make false

let mutex = Mutex.create ()
let current : config option ref = ref None
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 8
let injected = ref 0

(** Turn injection on.  [rate] is the per-occurrence fault probability in
    [0, 1]; [sites] restricts injection to the named sites; [max_faults]
    bounds the total number of injections (handy to fault exactly the
    first occurrence: [~rate:1.0 ~max_faults:1]). *)
let arm ?sites ?(max_faults = max_int) ?(skip = 0) ~seed ~rate () =
  Mutex.lock mutex;
  current :=
    Some { seed; rate_ppm = int_of_float (rate *. 1e6); sites; max_faults; skip };
  Hashtbl.reset counters;
  injected := 0;
  Atomic.set enabled true;
  Mutex.unlock mutex

(** Turn injection off and forget the schedule (counters included). *)
let disarm () =
  Atomic.set enabled false;
  Mutex.lock mutex;
  current := None;
  Hashtbl.reset counters;
  injected := 0;
  Mutex.unlock mutex

let armed () = Atomic.get enabled

(** Faults injected since the last {!arm}. *)
let injected_count () =
  Mutex.lock mutex;
  let n = !injected in
  Mutex.unlock mutex;
  n

(* The per-occurrence decision must be stable across processes and OCaml
   versions (schedules are replayed by seed), so it goes through Digest
   (MD5) like the cache keys do, not Hashtbl.hash.  Armed-only cost. *)
let decides c site n =
  let d = Digest.string (Printf.sprintf "%d:%s:%d" c.seed site n) in
  let v =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  v mod 1_000_000 < c.rate_ppm

(* Occurrence index and decision for one site hit; returns the payload to
   raise/report when this occurrence is scheduled. *)
let hit (site : string) : string option =
  Mutex.lock mutex;
  let r =
    match !current with
    | None -> None
    | Some c ->
        let site_armed =
          match c.sites with None -> true | Some l -> List.mem site l
        in
        if not site_armed then None
        else begin
          let n =
            match Hashtbl.find_opt counters site with
            | Some r ->
                incr r;
                !r
            | None ->
                Hashtbl.replace counters site (ref 1);
                1
          in
          let n = n + c.skip in
          if !injected < c.max_faults && decides c site n then begin
            incr injected;
            Some (Printf.sprintf "%s#%d" site n)
          end
          else None
        end
  in
  Mutex.unlock mutex;
  r

(** [should site] — did the schedule pick this occurrence?  The
    non-raising variant, for sites that act on the decision themselves
    (e.g. the cache writer truncating its own output to simulate a torn
    write).  Counts one occurrence of [site] when armed. *)
let should (site : string) : bool =
  if not (Atomic.get enabled) then false else hit site <> None

(** [check site] — raise {!Injected} if the schedule picked this
    occurrence, else return unit.  The raising variant, for sites where a
    real fault would surface as an exception (a failed read, a dying
    worker). *)
let check (site : string) : unit =
  if Atomic.get enabled then
    match hit site with None -> () | Some payload -> raise (Injected payload)

(** Transient-failure test for retry policies: faults this module injects
    and the I/O errors it simulates, as opposed to deterministic
    diagnostics that would recur on every attempt. *)
let is_transient = function
  | Injected _ | Sys_error _ -> true
  | _ -> false

(** Run [f] under an armed schedule and always disarm, even on raise. *)
let with_faults ?sites ?max_faults ~seed ~rate (f : unit -> 'a) : 'a =
  arm ?sites ?max_faults ~seed ~rate ();
  Fun.protect ~finally:disarm f

(* ------------------------------------------------------------------ *)
(* Environment-carried schedules                                       *)
(* ------------------------------------------------------------------ *)

(** The environment variable the worker binaries read a schedule from.
    Crash-only process workers cannot be armed through a function call —
    they are fresh processes — so the build farm's fault matrix ships the
    schedule in the environment and every [pdbworker] arms itself from it
    at startup. *)
let env_var = "PDT_FAULT_SPEC"

(** Render a schedule as the [PDT_FAULT_SPEC] syntax:
    [seed=N;rate=F;sites=a,b;max=M;skip=K] — [sites], [max] and [skip]
    optional.  Later fields win on duplicates, so the farm driver can
    append a fresh [skip=] per worker spawn without parsing the spec. *)
let spec_string ?sites ?max_faults ?skip ~seed ~rate () : string =
  String.concat ";"
    ([ Printf.sprintf "seed=%d" seed; Printf.sprintf "rate=%f" rate ]
    @ (match sites with
       | Some l -> [ "sites=" ^ String.concat "," l ]
       | None -> [])
    @ (match max_faults with
       | Some m -> [ Printf.sprintf "max=%d" m ]
       | None -> [])
    @ (match skip with
       | Some k -> [ Printf.sprintf "skip=%d" k ]
       | None -> []))

(** Parse a [PDT_FAULT_SPEC] string.  [Error] names the offending field;
    an empty string parses as "no schedule". *)
let parse_spec (s : string) :
    ((int * float * string list option * int option * int) option, string)
    result =
  if String.trim s = "" then Ok None
  else
    let seed = ref None and rate = ref None in
    let sites = ref None and max_faults = ref None and skip = ref 0 in
    let bad = ref None in
    List.iter
      (fun field ->
        let field = String.trim field in
        if field <> "" then
          match String.index_opt field '=' with
          | None -> bad := Some field
          | Some i -> (
              let k = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match k with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some n -> seed := Some n
                  | None -> bad := Some field)
              | "rate" -> (
                  match float_of_string_opt v with
                  | Some r when r >= 0.0 && r <= 1.0 -> rate := Some r
                  | _ -> bad := Some field)
              | "sites" ->
                  sites :=
                    Some
                      (List.filter
                         (fun s -> s <> "")
                         (String.split_on_char ',' v))
              | "max" -> (
                  match int_of_string_opt v with
                  | Some n -> max_faults := Some n
                  | None -> bad := Some field)
              | "skip" -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> skip := n
                  | _ -> bad := Some field)
              | _ -> bad := Some field))
      (String.split_on_char ';' s);
    match (!bad, !seed, !rate) with
    | Some f, _, _ -> Error (Printf.sprintf "bad field %S" f)
    | None, None, _ -> Error "missing seed="
    | None, _, None -> Error "missing rate="
    | None, Some seed, Some rate ->
        Ok (Some (seed, rate, !sites, !max_faults, !skip))

(** Arm from [PDT_FAULT_SPEC] if it is set and non-empty; returns whether
    a schedule was armed.  A malformed spec is reported on stderr and
    ignored — a typo in a test harness must degrade to "no injection",
    never crash the worker it was aimed at. *)
let arm_from_env () : bool =
  match Sys.getenv_opt env_var with
  | None -> false
  | Some s -> (
      match parse_spec s with
      | Ok None -> false
      | Ok (Some (seed, rate, sites, max_faults, skip)) ->
          arm ?sites ?max_faults ~skip ~seed ~rate ();
          true
      | Error msg ->
          Printf.eprintf "fault: ignoring malformed %s (%s): %S\n%!" env_var
            msg s;
          false)
