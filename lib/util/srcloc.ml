(** Source locations and ranges.

    Every entity PDT reports carries a source position; the PDB format prints
    them as [file line column] triples (see Figure 3 of the paper).  A
    {!t} names a point in a source file; a {!range} covers a header/body
    extent as used by the [rpos]/[cpos]/[tpos] PDB attributes. *)

type t = {
  file : string;  (** path as seen by the preprocessor *)
  line : int;     (** 1-based *)
  col : int;      (** 1-based *)
}

let make ~file ~line ~col = { file; line; col }

let dummy = { file = "<builtin>"; line = 0; col = 0 }

let is_dummy l = l.line = 0

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf l = Fmt.pf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Fmt.str "%a" pp l

(** A contiguous source extent, [start] inclusive to [stop] inclusive. *)
type range = { start : t; stop : t }

let range start stop = { start; stop }

let range_of_point p = { start = p; stop = p }

let dummy_range = { start = dummy; stop = dummy }

let pp_range ppf r = Fmt.pf ppf "%a..%a" pp r.start pp r.stop

(** Extent of a "fat" item: separate header and body ranges, as stored by the
    PDB [rpos]/[cpos]/[tpos] attributes.  Either part may be missing (e.g. a
    declaration without a body). *)
type extent = { header : range option; body : range option }

let extent ?header ?body () = { header; body }

let no_extent = { header = None; body = None }
