(** Virtual file system.

    PDT's front end resolves [#include] directives against a virtual file
    system so that test corpora, the bundled mini-STL headers, and generated
    workloads can be compiled without touching the disk.  Real directories
    can be mounted for the command-line tools. *)

type t = {
  files : (string, string) Hashtbl.t;  (* normalized path -> contents *)
  mutable include_paths : string list; (* searched for <...> and "..." *)
  mutable disk_fallback : bool;        (* read from the real FS if missing *)
  mutable recorder : (string -> unit) option;
      (* observes every successful read (normalized path); the incremental
         build driver installs one to capture a unit's true dependency set
         during preprocessing *)
}

let normalize path =
  (* Collapse "a/./b" and "a/x/../b"; keep it purely lexical. *)
  let absolute = String.length path > 0 && path.[0] = '/' in
  let parts = String.split_on_char '/' path in
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest | "." :: rest -> go acc rest
    | ".." :: rest -> (
        match acc with
        | [] | ".." :: _ -> go (".." :: acc) rest
        | _ :: acc' -> go acc' rest)
    | p :: rest -> go (p :: acc) rest
  in
  let joined = String.concat "/" (go [] parts) in
  if absolute then "/" ^ joined else joined

let create ?(include_paths = []) () =
  { files = Hashtbl.create 64; include_paths; disk_fallback = false;
    recorder = None }

let add_file t path contents = Hashtbl.replace t.files (normalize path) contents

let add_include_path t dir = t.include_paths <- t.include_paths @ [ dir ]

let set_disk_fallback t b = t.disk_fallback <- b

(** Install (or clear) a read observer.  Called with the normalized path of
    every file whose bytes are successfully served by {!read_raw} — the
    dependency-recording hook behind incremental rebuilds.  The recorder
    must not read from the VFS itself. *)
let set_recorder t f = t.recorder <- f

let mem t path = Hashtbl.mem t.files (normalize path)

(* Read a file's bytes.  Injection site "vfs.read" models a transient read
   error (NFS hiccup, EINTR storm): it raises [Fault.Injected], which the
   build driver retries.  A file that vanishes or truncates between
   [Sys.file_exists] and the read, by contrast, is a plain [None] — the
   compile proper diagnoses the missing input; mid-build disk races must
   never crash the pipeline. *)
let read_raw t path =
  Fault.check "vfs.read";
  let record contents =
    (match t.recorder with
     | Some f -> f (normalize path)
     | None -> ());
    Some contents
  in
  match Hashtbl.find_opt t.files (normalize path) with
  | Some c -> record c
  | None ->
      if
        t.disk_fallback
        && (try Sys.file_exists path && not (Sys.is_directory path)
            with Sys_error _ -> false)
      then
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match really_input_string ic (in_channel_length ic) with
                | contents -> record contents
                | exception (End_of_file | Sys_error _) -> None)
      else None

let dirname path =
  match String.rindex_opt path '/' with
  | None -> "."
  | Some i -> String.sub path 0 i

(** Resolve an include.  [system] includes ([<...>]) search only the include
    paths; quoted includes search the including file's directory first, then
    the include paths.  Returns the resolved (normalized) path. *)
let resolve_include t ~from ~system name =
  let candidates =
    let in_paths = List.map (fun d -> d ^ "/" ^ name) t.include_paths in
    if system then in_paths else (dirname from ^ "/" ^ name) :: name :: in_paths
  in
  let rec first = function
    | [] -> None
    | c :: rest ->
        let c = normalize c in
        if mem t c || (t.disk_fallback && Sys.file_exists c) then Some c
        else first rest
  in
  first candidates

let files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

(** A deep copy sharing no mutable state with the original.  The recorder
    is deliberately not inherited: an observer installed on the original
    must not see reads from private worker copies it knows nothing about. *)
let copy t =
  let files = Hashtbl.copy t.files in
  { files; include_paths = t.include_paths; disk_fallback = t.disk_fallback;
    recorder = None }
