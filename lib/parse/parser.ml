(** Recursive-descent parser for the C++ subset.

    Operates on the preprocessed token stream.  Two classic C++ parsing
    problems are handled the way production front ends handle them:

    - {b declaration vs. expression} ambiguity in statements is resolved by a
      tentative parse: we try to parse a declaration, and commit only when the
      base type names a known type (class, enum, typedef, template, or
      template parameter registered during parsing) and the declarator shape
      is valid; otherwise we backtrack and parse an expression;
    - {b template-id} recognition ([x < y] vs [x<y>]) uses the registry of
      template names plus a tentative parse of the argument list, and [>>] is
      split into two [>] tokens when it closes nested template argument
      lists (the [vector<Stack<int>>] problem).

    The parser records source extents (header/body ranges) for classes,
    routines and templates — these become the [cpos]/[rpos]/[tpos] PDB
    attributes — and the raw text of template declarations (the PDB [ttext]
    attribute). *)

open Pdt_util
open Pdt_lex
open Pdt_ast.Ast

exception Parse_error of Srcloc.t * string

exception Bail
(* internal: the per-TU error budget is exhausted; unwind to the entry
   point, which returns the partial AST accumulated so far *)

type t = {
  toks : Token.tok array;
  mutable pos : int;
  mutable undo : (int * Token.tok) list;  (* '>>'-split mutations, newest first *)
  mutable undo_len : int;
  mutable no_gt : bool;  (* inside a template argument: '>' is not an operator *)
  diags : Diag.engine;
  limits : Limits.t;
  mutable speculative : int;  (* > 0 inside a tentative parse: recovery off *)
  mutable recovered : int;    (* syntax errors recovered so far (vs max_errors) *)
  (* registries for disambiguation; values are reference counts so scoped
     registration can push/pop *)
  type_names : (string, int) Hashtbl.t;
  template_names : (string, int) Hashtbl.t;
}

let eof_tok : Token.tok =
  { tok = Token.Eof; loc = Srcloc.dummy; bol = false; space = false }

let create ?(limits = Limits.default ()) ~diags toks =
  let t =
    { toks = Array.of_list toks; pos = 0; undo = []; undo_len = 0; no_gt = false;
      diags; limits; speculative = 0; recovered = 0;
      type_names = Hashtbl.create 64; template_names = Hashtbl.create 64 }
  in
  (* built-in library type names that behave like types even without a
     visible declaration (parallel to the compiler's built-ins) *)
  List.iter (fun n -> Hashtbl.replace t.type_names n 1) [ "size_t"; "ptrdiff_t" ];
  t

(* ------------------------------------------------------------------ *)
(* Cursor                                                              *)
(* ------------------------------------------------------------------ *)

let cur t : Token.tok =
  if t.pos < Array.length t.toks then t.toks.(t.pos) else eof_tok

let peek_at t n : Token.tok =
  if t.pos + n + 1 < Array.length t.toks then t.toks.(t.pos + n + 1) else eof_tok

let advance t = t.pos <- t.pos + 1

(* When the grammar needs a single '>' but the lexer produced '>>' (nested
   template argument lists): consume the first '>' by rewriting the token in
   place to a plain '>', which then denotes the second half.  The mutation is
   recorded so tentative parses can roll it back. *)
let split_gtgt t =
  match (cur t).tok with
  | Token.Punct ">>" ->
      let old = t.toks.(t.pos) in
      t.undo <- (t.pos, old) :: t.undo;
      t.undo_len <- t.undo_len + 1;
      t.toks.(t.pos) <-
        { old with
          tok = Token.Punct ">";
          loc = { old.loc with Srcloc.col = old.loc.Srcloc.col + 1 } }
  | _ -> ()

type mark = { m_pos : int; m_undo_len : int }

let save t = { m_pos = t.pos; m_undo_len = t.undo_len }

let restore t m =
  while t.undo_len > m.m_undo_len do
    (match t.undo with
     | (i, tk) :: rest ->
         t.toks.(i) <- tk;
         t.undo <- rest
     | [] -> assert false);
    t.undo_len <- t.undo_len - 1
  done;
  t.pos <- m.m_pos

let loc t = (cur t).loc

let err t fmt = Fmt.kstr (fun m -> raise (Parse_error (loc t, m))) fmt

(* Recursion governor: every self-recursive production passes through one of
   the [with_depth]-wrapped entry points, so pathological nesting raises
   {!Limits.Exceeded} (converted to a Fatal diagnostic at the TU entry)
   instead of overflowing the stack. *)
let with_depth t f =
  Limits.enter_parse t.limits;
  Fun.protect ~finally:(fun () -> Limits.exit_parse t.limits) f

(* Tentative parses run under [speculating]: error recovery must not fire
   (and must not record diagnostics) for a parse the caller intends to roll
   back. *)
let speculating t f =
  t.speculative <- t.speculative + 1;
  Fun.protect ~finally:(fun () -> t.speculative <- t.speculative - 1) f

(* Record one recovered syntax error; once the per-TU budget is spent, note
   the give-up as a Fatal diagnostic and unwind with {!Bail}. *)
let record_recovery t l m =
  t.recovered <- t.recovered + 1;
  Diag.error t.diags l "%s" m;
  if t.recovered >= t.limits.Limits.budgets.Limits.max_errors then begin
    Diag.fatal_note t.diags l
      "too many syntax errors (budget %d); giving up on this translation unit"
      t.limits.Limits.budgets.Limits.max_errors;
    raise Bail
  end

(* Panic-mode synchronization: skip to the next ';' at brace depth 0
   (consumed) or to a '}' closing the current block (left for the caller's
   loop), tracking nested braces on the way. *)
let sync_to_boundary t =
  let rec go depth =
    match (cur t).tok with
    | Token.Eof -> ()
    | Token.Punct ";" when depth = 0 -> advance t
    | Token.Punct "{" ->
        advance t;
        go (depth + 1)
    | Token.Punct "}" when depth = 0 -> ()
    | Token.Punct "}" ->
        advance t;
        go (depth - 1)
    | _ ->
        advance t;
        go depth
  in
  go 0

let check_punct t p = match (cur t).tok with Token.Punct q -> String.equal p q | _ -> false
let check_kw t k = match (cur t).tok with Token.Kw q -> String.equal k q | _ -> false
let check_ident t = match (cur t).tok with Token.Ident _ -> true | _ -> false

let eat_punct t p =
  if check_punct t p then (advance t; true) else false

let eat_kw t k = if check_kw t k then (advance t; true) else false

let expect_punct t p =
  if not (eat_punct t p) then
    err t "expected '%s' but found %s" p (Token.describe (cur t).tok)

let expect_ident t =
  match (cur t).tok with
  | Token.Ident s ->
      advance t;
      s
  | _ -> err t "expected identifier but found %s" (Token.describe (cur t).tok)

(* the source location just before the current token — used for end-of-range *)
let prev_loc t =
  if t.pos = 0 then loc t
  else
    let p = t.toks.(t.pos - 1) in
    p.loc

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)
(* ------------------------------------------------------------------ *)

let reg tbl name =
  Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let unreg tbl name =
  match Hashtbl.find_opt tbl name with
  | Some 1 | None -> Hashtbl.remove tbl name
  | Some n -> Hashtbl.replace tbl name (n - 1)

let register_type t name = reg t.type_names name

(* class templates are type names; function templates must NOT become type
   names or calls like [dot(x, y)] would parse as functional casts *)
let register_template_type t name =
  reg t.template_names name;
  reg t.type_names name

let register_template_func t name = reg t.template_names name

let is_type_name t name = Hashtbl.mem t.type_names name
let is_template_name t name = Hashtbl.mem t.template_names name

(* ------------------------------------------------------------------ *)
(* Names and types                                                     *)
(* ------------------------------------------------------------------ *)

let rec parse_template_args t : template_arg list =
  (* assumes '<' already consumed; consumes the closing '>' *)
  if eat_punct t ">" then []
  else begin
    let rec args acc =
      let a = parse_template_arg t in
      if eat_punct t "," then args (a :: acc)
      else begin
        (match (cur t).tok with
         | Token.Punct ">" -> advance t
         | Token.Punct ">>" -> split_gtgt t
         | _ -> err t "expected '>' closing template argument list");
        List.rev (a :: acc)
      end
    in
    args []
  end

and parse_template_arg t : template_arg =
  (* A template argument is a type if it starts like one; otherwise an
     expression (constant).  Tentative: try type first.  While parsing the
     expression form, a top-level '>' closes the argument list rather than
     comparing (the C++98 rule). *)
  let m = save t in
  match parse_type_opt t ~allow_abstract:true with
  | Some ty
    when (match (cur t).tok with
          | Token.Punct (">" | ">>" | ",") -> true
          | _ -> false) -> TA_type ty
  | _ ->
      restore t m;
      let saved = t.no_gt in
      t.no_gt <- true;
      let e = parse_conditional t in
      t.no_gt <- saved;
      TA_expr e

(* qualified-name := ['::'] part ('::' part)*   where part may have <args> *)
and parse_qual_name ?(in_expr = false) t : qual_name =
  let global = eat_punct t "::" in
  let rec parts acc =
    let id =
      if check_kw t "operator" then parse_operator_name t
      else if check_punct t "~" then begin
        advance t;
        "~" ^ expect_ident t
      end
      else expect_ident t
    in
    let targs =
      if check_punct t "<" && should_parse_template_args t ~in_expr ~id then begin
        advance t;
        Some (parse_template_args t)
      end
      else None
    in
    let part = { id; targs } in
    if check_punct t "::"
       && (match (peek_at t 0).tok with
           | Token.Ident _ | Token.Kw "operator" | Token.Punct "~" -> true
           | _ -> false)
    then begin
      advance t;
      parts (part :: acc)
    end
    else List.rev (part :: acc)
  in
  { global; parts = parts [] }

(* Decide whether '<' after [id] begins a template argument list. *)
and should_parse_template_args t ~in_expr ~id =
  if not in_expr then
    (* in type context, '<' after a name is always a template-id *)
    true
  else if is_template_name t id then begin
    (* still verify tentatively so 'a < b' with template-named a can't wedge *)
    let m = save t in
    advance t (* '<' *);
    match
      speculating t @@ fun () ->
      ignore (parse_template_args t);
      (* a template-id in an expression must be followed by '(' or '::' *)
      match (cur t).tok with
      | Token.Punct ("(" | "::") -> true
      | _ -> false
    with
    | ok ->
        restore t m;
        ok
    | exception Parse_error _ ->
        restore t m;
        false
    | exception e ->
        (* non-speculative failure (e.g. a budget breach): restore the mark
           so diagnostics point at the true error location, then re-raise *)
        restore t m;
        raise e
  end
  else false

and parse_operator_name t : string =
  (* assumes current token is 'operator' *)
  advance t;
  match (cur t).tok with
  | Token.Punct "(" when (peek_at t 0).tok = Token.Punct ")" ->
      advance t; advance t; "operator()"
  | Token.Punct "[" when (peek_at t 0).tok = Token.Punct "]" ->
      advance t; advance t; "operator[]"
  | Token.Punct p ->
      advance t;
      "operator" ^ p
  | Token.Kw ("new" | "delete") ->
      let k = Token.spelling (cur t).tok in
      advance t;
      if check_punct t "[" && (peek_at t 0).tok = Token.Punct "]" then begin
        advance t; advance t;
        "operator " ^ k ^ "[]"
      end
      else "operator " ^ k
  | _ ->
      (* conversion operator: 'operator' type — encode the target type in the
         name, as front ends do *)
      let ty = parse_type t ~allow_abstract:true in
      "operator " ^ type_to_string ty

(* builtin type specifier words *)
and builtin_of_kws kws : builtin option =
  let base = ref None and signedness = ref None and length = ref None in
  let ok = ref true in
  List.iter
    (fun k ->
      match k with
      | "void" -> base := Some `Void
      | "bool" -> base := Some `Bool
      | "char" -> base := Some `Char
      | "wchar_t" -> base := Some `Wchar
      | "int" -> if !base = None then base := Some `Int
      | "float" -> base := Some `Float
      | "double" -> base := Some `Double
      | "signed" -> signedness := Some `Signed
      | "unsigned" -> signedness := Some `Unsigned
      | "short" -> length := Some `Short
      | "long" ->
          length := (match !length with Some `Long -> Some `LongLong | _ -> Some `Long)
      | _ -> ok := false)
    kws;
  if not !ok then None
  else
    match (!base, !signedness, !length) with
    | None, None, None -> None
    | None, s, l -> Some { base = `Int; signedness = s; length = l }
    | Some b, s, l -> Some { base = b; signedness = s; length = l }

and is_builtin_kw = function
  | "void" | "bool" | "char" | "wchar_t" | "int" | "float" | "double"
  | "signed" | "unsigned" | "short" | "long" -> true
  | _ -> false

(* Parse a type, or return None (with cursor restored) if the tokens do not
   begin a type.  [allow_abstract] permits declarator-less types (casts,
   template args, parameter types). *)
and parse_type_opt t ~allow_abstract : type_expr option =
  ignore allow_abstract;
  let m = save t in
  match speculating t (fun () -> parse_type t ~allow_abstract) with
  | ty -> Some ty
  | exception Parse_error _ ->
      restore t m;
      None
  | exception e ->
      (* restore before re-raising non-speculative failures *)
      restore t m;
      raise e

and parse_type t ~allow_abstract : type_expr =
  with_depth t @@ fun () -> parse_type_body t ~allow_abstract

and parse_type_body t ~allow_abstract : type_expr =
  (* leading cv-qualifiers *)
  let const = ref false and volatile = ref false in
  let rec cv () =
    if eat_kw t "const" then (const := true; cv ())
    else if eat_kw t "volatile" then (volatile := true; cv ())
  in
  cv ();
  ignore (eat_kw t "typename");
  cv ();
  let base =
    match (cur t).tok with
    | Token.Kw k when is_builtin_kw k ->
        let rec kws acc =
          match (cur t).tok with
          | Token.Kw k when is_builtin_kw k ->
              advance t;
              kws (k :: acc)
          | _ -> List.rev acc
        in
        let words = kws [] in
        (match builtin_of_kws words with
         | Some b -> TBuiltin b
         | None -> err t "invalid builtin type combination")
    | Token.Kw ("class" | "struct" | "union" | "enum") ->
        (* elaborated type specifier: 'class Name' used as a type *)
        advance t;
        TName (parse_qual_name t)
    | Token.Ident id ->
        if is_type_name t id || check_qualified_type t then
          TName (parse_qual_name t)
        else err t "'%s' does not name a type" id
    | Token.Punct "::" -> TName (parse_qual_name t)
    | _ -> err t "expected type but found %s" (Token.describe (cur t).tok)
  in
  cv ();
  let ty = if !volatile then TVolatile base else base in
  let ty = if !const then TConst ty else ty in
  (* pointer / reference suffixes with interleaved cv *)
  let rec suffixes ty =
    if eat_punct t "*" then begin
      let ty = ref (TPtr ty) in
      let rec q () =
        if eat_kw t "const" then (ty := TConst !ty; q ())
        else if eat_kw t "volatile" then (ty := TVolatile !ty; q ())
      in
      q ();
      suffixes !ty
    end
    else if check_punct t "&" && allow_abstract_ref t ~allow_abstract then begin
      advance t;
      suffixes (TRef ty)
    end
    else ty
  in
  suffixes ty

(* In abstract contexts 'T &' is part of the type.  In declarator contexts the
   '&' belongs to the declarator, but parse_type is only used for the
   decl-specifier part there, so accepting '&' here is still correct because
   declarator parsing calls parse_type with allow_abstract=false and handles
   '&' itself.  We therefore accept '&' only when abstract. *)
and allow_abstract_ref t ~allow_abstract =
  ignore t;
  allow_abstract

(* a qualified name that is probably a type: Ident '::' ... *)
and check_qualified_type t =
  match ((cur t).tok, (peek_at t 0).tok) with
  | Token.Ident _, Token.Punct "::" -> true
  | Token.Ident id, Token.Punct "<" ->
      (* only class templates form type names; a function template followed
         by '<' is a call with explicit arguments *)
      is_template_name t id && is_type_name t id
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

and mk_expr t e0 lo : expr = ignore t; { e = e0; eloc = lo }

and parse_expression t : expr =
  let lo = loc t in
  let e = parse_assignment t in
  if check_punct t "," then begin
    advance t;
    let rest = parse_expression t in
    mk_expr t (Comma (e, rest)) lo
  end
  else e

and parse_assignment t : expr =
  let lo = loc t in
  if check_kw t "throw" then begin
    advance t;
    let arg =
      match (cur t).tok with
      | Token.Punct (";" | ")" | "," | "]") -> None
      | _ -> Some (parse_assignment t)
    in
    mk_expr t (ThrowE arg) lo
  end
  else
    let lhs = parse_conditional t in
    match (cur t).tok with
    | Token.Punct (("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") as op) ->
        advance t;
        let rhs = parse_assignment t in
        mk_expr t (Assign (op, lhs, rhs)) lo
    | _ -> lhs

and parse_conditional t : expr =
  let lo = loc t in
  let c = parse_binary t 1 in
  if eat_punct t "?" then begin
    let a = parse_expression t in
    expect_punct t ":";
    let b = parse_assignment t in
    mk_expr t (Cond (c, a, b)) lo
  end
  else c

and binop_prec = function
  | "*" | "/" | "%" -> 10
  | "+" | "-" -> 9
  | "<<" | ">>" -> 8
  | "<" | ">" | "<=" | ">=" -> 7
  | "==" | "!=" -> 6
  | "&" -> 5
  | "^" -> 4
  | "|" -> 3
  | "&&" -> 2
  | "||" -> 1
  | _ -> 0

and parse_binary t min_prec : expr =
  let lo = loc t in
  let lhs = ref (parse_unary t) in
  let continue_ = ref true in
  while !continue_ do
    match (cur t).tok with
    | Token.Punct (">" | ">>") when t.no_gt -> continue_ := false
    | Token.Punct op when binop_prec op >= min_prec && binop_prec op > 0 ->
        advance t;
        let rhs = parse_binary t (binop_prec op + 1) in
        lhs := mk_expr t (Binary (op, !lhs, rhs)) lo
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary t : expr = with_depth t @@ fun () -> parse_unary_body t

and parse_unary_body t : expr =
  let lo = loc t in
  match (cur t).tok with
  | Token.Punct (("!" | "~" | "-" | "+" | "*" | "&" | "++" | "--") as op) ->
      advance t;
      let e = parse_unary t in
      mk_expr t (Unary (op, e)) lo
  | Token.Kw "sizeof" ->
      advance t;
      if check_punct t "(" then begin
        let m = save t in
        advance t;
        match parse_type_opt t ~allow_abstract:true with
        | Some ty when check_punct t ")" ->
            advance t;
            mk_expr t (SizeofT ty) lo
        | _ ->
            restore t m;
            let e = parse_unary t in
            mk_expr t (SizeofE e) lo
      end
      else
        let e = parse_unary t in
        mk_expr t (SizeofE e) lo
  | Token.Kw "new" ->
      advance t;
      let ty = parse_new_type t in
      if eat_punct t "[" then begin
        let n = parse_expression t in
        expect_punct t "]";
        mk_expr t (New (ty, None, Some n)) lo
      end
      else if eat_punct t "(" then begin
        let args = parse_call_args t in
        mk_expr t (New (ty, Some args, None)) lo
      end
      else mk_expr t (New (ty, None, None)) lo
  | Token.Kw "delete" ->
      advance t;
      let arr =
        if check_punct t "[" && (peek_at t 0).tok = Token.Punct "]" then begin
          advance t; advance t; true
        end
        else false
      in
      let e = parse_unary t in
      mk_expr t (Delete (arr, e)) lo
  | _ -> parse_postfix t

(* 'new T' — T without trailing () . pointer suffixes allowed *)
and parse_new_type t : type_expr =
  let base =
    match (cur t).tok with
    | Token.Kw k when is_builtin_kw k ->
        let rec kws acc =
          match (cur t).tok with
          | Token.Kw k when is_builtin_kw k -> advance t; kws (k :: acc)
          | _ -> List.rev acc
        in
        (match builtin_of_kws (kws []) with
         | Some b -> TBuiltin b
         | None -> err t "invalid type after new")
    | _ -> TName (parse_qual_name t)
  in
  let rec stars ty = if eat_punct t "*" then stars (TPtr ty) else ty in
  stars base

and parse_call_args t : expr list =
  (* assumes '(' consumed; consumes ')' *)
  if eat_punct t ")" then []
  else begin
    let rec args acc =
      let a = parse_assignment t in
      if eat_punct t "," then args (a :: acc)
      else begin
        expect_punct t ")";
        List.rev (a :: acc)
      end
    in
    args []
  end

and parse_postfix t : expr =
  let lo = loc t in
  let prim = parse_primary t in
  let rec post e =
    match (cur t).tok with
    | Token.Punct "(" ->
        advance t;
        let args = parse_call_args t in
        post (mk_expr t (Call (e, args)) lo)
    | Token.Punct "[" ->
        advance t;
        let i = parse_expression t in
        expect_punct t "]";
        post (mk_expr t (Index (e, i)) lo)
    | Token.Punct "." ->
        advance t;
        let m = parse_qual_name ~in_expr:true t in
        post (mk_expr t (Member (e, false, m)) lo)
    | Token.Punct "->" ->
        advance t;
        let m = parse_qual_name ~in_expr:true t in
        post (mk_expr t (Member (e, true, m)) lo)
    | Token.Punct "++" ->
        advance t;
        post (mk_expr t (Postfix ("++", e)) lo)
    | Token.Punct "--" ->
        advance t;
        post (mk_expr t (Postfix ("--", e)) lo)
    | _ -> e
  in
  post prim

and parse_primary t : expr =
  let lo = loc t in
  match (cur t).tok with
  | Token.IntLit (_, v) ->
      advance t;
      mk_expr t (IntE v) lo
  | Token.FloatLit (_, v) ->
      advance t;
      mk_expr t (FloatE v) lo
  | Token.CharLit (_, c) ->
      advance t;
      mk_expr t (CharE c) lo
  | Token.StringLit (_, s) ->
      advance t;
      mk_expr t (StringE s) lo
  | Token.Kw "true" ->
      advance t;
      mk_expr t (BoolE true) lo
  | Token.Kw "false" ->
      advance t;
      mk_expr t (BoolE false) lo
  | Token.Kw "this" ->
      advance t;
      mk_expr t ThisE lo
  | Token.Kw (("static_cast" | "dynamic_cast" | "const_cast" | "reinterpret_cast") as k) ->
      advance t;
      expect_punct t "<";
      let ty = parse_type t ~allow_abstract:true in
      (match (cur t).tok with
       | Token.Punct ">" -> advance t
       | Token.Punct ">>" -> split_gtgt t
       | _ -> err t "expected '>' after cast type");
      expect_punct t "(";
      let e = parse_expression t in
      expect_punct t ")";
      mk_expr t (NamedCast (k, ty, e)) lo
  | Token.Punct "(" -> (
      (* C-style cast vs parenthesized expression: tentative type parse.
         Inside parentheses '>' is an ordinary operator again. *)
      let saved_no_gt = t.no_gt in
      t.no_gt <- false;
      Fun.protect ~finally:(fun () -> t.no_gt <- saved_no_gt) @@ fun () ->
      let m = save t in
      advance t;
      match parse_type_opt t ~allow_abstract:true with
      | Some ty
        when check_punct t ")"
             && (match (peek_at t 0).tok with
                 | Token.Ident _ | Token.IntLit _ | Token.FloatLit _
                 | Token.CharLit _ | Token.StringLit _
                 | Token.Kw ("this" | "true" | "false" | "sizeof" | "new") -> true
                 | Token.Punct ("(" | "!" | "~" | "*" | "&" | "-") -> true
                 | _ -> false) ->
          advance t;
          let e = parse_unary t in
          mk_expr t (CCast (ty, e)) lo
      | _ ->
          restore t m;
          advance t;
          let e = parse_expression t in
          expect_punct t ")";
          e)
  | Token.Kw k when is_builtin_kw k ->
      (* functional cast on a builtin: int(x) *)
      let rec kws acc =
        match (cur t).tok with
        | Token.Kw k when is_builtin_kw k ->
            advance t;
            kws (k :: acc)
        | _ -> List.rev acc
      in
      let b =
        match builtin_of_kws (kws []) with
        | Some b -> TBuiltin b
        | None -> err t "invalid type in functional cast"
      in
      expect_punct t "(";
      let args = parse_call_args t in
      mk_expr t (Construct (b, args)) lo
  | Token.Ident id
    when (is_type_name t id || is_template_name t id)
         && is_functional_cast_ahead t -> (
      (* T(args) where T is a known type: constructor call *)
      let m = save t in
      match parse_type_opt t ~allow_abstract:true with
      | Some ty when check_punct t "(" ->
          advance t;
          let args = parse_call_args t in
          mk_expr t (Construct (ty, args)) lo
      | _ ->
          restore t m;
          let q = parse_qual_name ~in_expr:true t in
          mk_expr t (IdE q) lo)
  | Token.Ident _ | Token.Punct "::" | Token.Kw "operator" | Token.Punct "~" ->
      let q = parse_qual_name ~in_expr:true t in
      mk_expr t (IdE q) lo
  | tok -> err t "expected expression but found %s" (Token.describe tok)

(* Heuristic: a known type name followed by '(' or '<...>(' is a functional
   cast / constructor call; a bare name is just an id (could be a variable
   shadowing: accepted limitation of the subset). *)
and is_functional_cast_ahead t =
  let m = save t in
  match
    speculating t @@ fun () ->
    match parse_type_opt t ~allow_abstract:true with
    | Some _ -> check_punct t "("
    | None -> false
  with
  | result ->
      restore t m;
      result
  | exception Parse_error _ ->
      restore t m;
      false
  | exception e ->
      restore t m;
      raise e

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_statement t : stmt = with_depth t @@ fun () -> parse_statement_body t

and parse_statement_body t : stmt =
  let lo = loc t in
  let mk s0 = { s = s0; sloc = lo } in
  match (cur t).tok with
  | Token.Punct "{" -> parse_compound t
  | Token.Punct ";" ->
      advance t;
      mk (SExpr None)
  | Token.Kw "if" ->
      advance t;
      expect_punct t "(";
      let c = parse_condition t in
      expect_punct t ")";
      let thn = parse_statement t in
      let els = if eat_kw t "else" then Some (parse_statement t) else None in
      mk (SIf (c, thn, els))
  | Token.Kw "while" ->
      advance t;
      expect_punct t "(";
      let c = parse_condition t in
      expect_punct t ")";
      mk (SWhile (c, parse_statement t))
  | Token.Kw "do" ->
      advance t;
      let body = parse_statement t in
      if not (eat_kw t "while") then err t "expected 'while' after do-body";
      expect_punct t "(";
      let c = parse_expression t in
      expect_punct t ")";
      expect_punct t ";";
      mk (SDoWhile (body, c))
  | Token.Kw "for" ->
      advance t;
      expect_punct t "(";
      let init =
        if eat_punct t ";" then None
        else begin
          let s = parse_decl_or_expr_stmt t in
          Some s
        end
      in
      let cond = if check_punct t ";" then None else Some (parse_expression t) in
      expect_punct t ";";
      let step = if check_punct t ")" then None else Some (parse_expression t) in
      expect_punct t ")";
      mk (SFor (init, cond, step, parse_statement t))
  | Token.Kw "return" ->
      advance t;
      let e = if check_punct t ";" then None else Some (parse_expression t) in
      expect_punct t ";";
      mk (SReturn e)
  | Token.Kw "break" ->
      advance t;
      expect_punct t ";";
      mk SBreak
  | Token.Kw "continue" ->
      advance t;
      expect_punct t ";";
      mk SContinue
  | Token.Kw "switch" ->
      advance t;
      expect_punct t "(";
      let e = parse_expression t in
      expect_punct t ")";
      expect_punct t "{";
      let rec cases acc =
        if eat_punct t "}" then List.rev acc
        else if eat_kw t "case" then begin
          let g = parse_conditional t in
          expect_punct t ":";
          let body = case_body t in
          cases ({ case_guard = Some g; case_body = body } :: acc)
        end
        else if eat_kw t "default" then begin
          expect_punct t ":";
          let body = case_body t in
          cases ({ case_guard = None; case_body = body } :: acc)
        end
        else err t "expected 'case', 'default' or '}' in switch body"
      and case_body t =
        let rec go acc =
          match (cur t).tok with
          | Token.Kw ("case" | "default") | Token.Punct "}" -> List.rev acc
          | _ -> go (parse_statement t :: acc)
        in
        go []
      in
      mk (SSwitch (e, cases []))
  | Token.Kw "try" ->
      advance t;
      let body = parse_compound t in
      let rec handlers acc =
        if eat_kw t "catch" then begin
          expect_punct t "(";
          let p =
            if eat_punct t "..." then None
            else begin
              let ty = parse_type t ~allow_abstract:true in
              let name =
                match (cur t).tok with
                | Token.Ident s ->
                    advance t;
                    Some s
                | _ -> None
              in
              Some { pname = name; ptype = ty; pdefault = None; ploc = lo }
            end
          in
          expect_punct t ")";
          let hb = parse_compound t in
          handlers ({ h_param = p; h_body = hb } :: acc)
        end
        else List.rev acc
      in
      let hs = handlers [] in
      if hs = [] then err t "expected 'catch' after try-block";
      mk (STry (body, hs))
  | Token.Kw "throw" ->
      let e = parse_expression t in
      expect_punct t ";";
      mk (SExpr (Some e))
  | Token.Ident "spawn"
    when (match (peek_at t 0).tok with
          | Token.Ident _ | Token.Punct "::" -> true
          | _ -> false) -> (
      (* contextual keyword: [spawn f(args);] launches the call on a new
         thread.  'spawn' remains a valid ordinary identifier everywhere
         else, so commit only when the remainder parses as a call statement
         and fall back to declaration/expression parsing otherwise. *)
      let m = save t in
      match
        speculating t @@ fun () ->
        advance t;
        let e = parse_expression t in
        if check_punct t ";" && (match e.e with Call _ -> true | _ -> false)
        then (advance t; Some e)
        else None
      with
      | Some e -> mk (SSpawn e)
      | None | (exception Parse_error _) ->
          restore t m;
          parse_decl_or_expr_stmt t)
  | Token.Ident "join"
    when (match (peek_at t 0).tok with
          | Token.Punct ";" | Token.Ident _ | Token.Punct "::" -> true
          | _ -> false) -> (
      (* contextual keyword: [join;] waits for every outstanding spawn in
         the routine, [join f;] for the threads running [f]. *)
      let m = save t in
      match
        speculating t @@ fun () ->
        advance t;
        if eat_punct t ";" then Some None
        else
          let q = parse_qual_name ~in_expr:true t in
          if eat_punct t ";" then Some (Some q) else None
      with
      | Some target -> mk (SJoin target)
      | None | (exception Parse_error _) ->
          restore t m;
          parse_decl_or_expr_stmt t)
  | _ -> parse_decl_or_expr_stmt t

and parse_condition t : expr = parse_expression t

and parse_compound t : stmt =
  let lo = loc t in
  expect_punct t "{";
  let rec go acc =
    if eat_punct t "}" then List.rev acc
    else if (cur t).tok = Token.Eof then
      err t "unexpected end of file in compound statement"
    else
      match parse_statement t with
      | s -> go (s :: acc)
      | exception Parse_error (l, m) when t.speculative = 0 ->
          (* panic-mode recovery: report, skip to the next statement
             boundary, and keep collecting statements *)
          record_recovery t l m;
          sync_to_boundary t;
          go acc
  in
  { s = SCompound (go []); sloc = lo }

(* declaration-statement or expression-statement; consumes ';' *)
and parse_decl_or_expr_stmt t : stmt =
  let lo = loc t in
  let m = save t in
  let as_decl () =
    match try_parse_var_decls t with
    | Some vds ->
        expect_punct t ";";
        Some { s = SDecl vds; sloc = lo }
    | None -> None
  in
  match as_decl () with
  | Some s -> s
  | None ->
      restore t m;
      let e = parse_expression t in
      expect_punct t ";";
      { s = SExpr (Some e); sloc = lo }

(* Try to parse "type declarator (, declarator)*" without consuming ';'.
   Returns None (cursor unspecified) on failure. *)
and try_parse_var_decls t : var_decl list option =
  let starts_like_type =
    match (cur t).tok with
    | Token.Kw k ->
        is_builtin_kw k
        || (match k with
            | "const" | "volatile" | "typename" | "static" | "extern"
            | "register" | "mutable" -> true
            | _ -> false)
    | Token.Ident id -> is_type_name t id || check_qualified_type t
    | Token.Punct "::" -> true
    | _ -> false
  in
  if not starts_like_type then None
  else begin
    let m = save t in
    match
      speculating t @@ fun () ->
      let storage =
        let st = ref no_storage in
        let rec go () =
          if eat_kw t "static" then (st := { !st with st_static = true }; go ())
          else if eat_kw t "extern" then (st := { !st with st_extern = true }; go ())
          else if eat_kw t "register" then (st := { !st with st_register = true }; go ())
          else if eat_kw t "mutable" then (st := { !st with st_mutable = true }; go ())
        in
        go ();
        !st
      in
      let base = parse_type t ~allow_abstract:false in
      let rec declarators acc =
        let vloc = loc t in
        (* declarator: * & prefixes then identifier then [n] suffix *)
        let ty = ref base in
        let rec prefixes () =
          if eat_punct t "*" then begin
            ty := TPtr !ty;
            let rec q () =
              if eat_kw t "const" then (ty := TConst !ty; q ())
              else if eat_kw t "volatile" then (ty := TVolatile !ty; q ())
            in
            q ();
            prefixes ()
          end
          else if eat_punct t "&" then begin
            ty := TRef !ty;
            prefixes ()
          end
        in
        prefixes ();
        let name =
          match (cur t).tok with
          | Token.Ident s ->
              advance t;
              s
          | tok -> raise (Parse_error (loc t, "expected declarator name, found " ^ Token.describe tok))
        in
        (* array suffixes *)
        (* suffix dimensions: the first [] is the outermost dimension, so
           collect then fold right-to-left *)
        let rec dims acc =
          if eat_punct t "[" then begin
            let n = if check_punct t "]" then None else Some (parse_conditional t) in
            expect_punct t "]";
            dims (n :: acc)
          end
          else acc  (* innermost first *)
        in
        List.iter (fun n -> ty := TArray (!ty, n)) (dims []);
        let init =
          if eat_punct t "=" then EqInit (parse_assignment t)
          else if check_punct t "(" then begin
            advance t;
            CtorInit (parse_call_args t)
          end
          else NoInit
        in
        let vd = { v_name = name; v_type = !ty; v_init = init; v_loc = vloc; v_storage = storage } in
        if eat_punct t "," then declarators (vd :: acc)
        else if check_punct t ";" then List.rev (vd :: acc)
        else raise (Parse_error (loc t, "expected ',' or ';' after declarator"))
      in
      declarators []
    with
    | vds -> Some vds
    | exception Parse_error _ -> None
    | exception e ->
        (* restore before re-raising non-speculative failures *)
        restore t m;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(* parameter-list: assumes '(' consumed; consumes ')' *)
and parse_params t : param list * bool =
  if eat_punct t ")" then ([], false)
  else begin
    let rec go acc =
      if eat_punct t "..." then begin
        expect_punct t ")";
        (List.rev acc, true)
      end
      else begin
        let ploc = loc t in
        let base = parse_type t ~allow_abstract:true in
        (* declarator part: * & already folded into type by parse_type in
           abstract mode; here may come a name and array suffixes *)
        let ty = ref base in
        let name =
          match (cur t).tok with
          | Token.Ident s ->
              advance t;
              Some s
          | _ -> None
        in
        (* suffix dimensions: the first [] is the outermost dimension, so
           collect then fold right-to-left *)
        let rec dims acc =
          if eat_punct t "[" then begin
            let n = if check_punct t "]" then None else Some (parse_conditional t) in
            expect_punct t "]";
            dims (n :: acc)
          end
          else acc  (* innermost first *)
        in
        List.iter (fun n -> ty := TArray (!ty, n)) (dims []);
        let default = if eat_punct t "=" then Some (parse_assignment t) else None in
        let p = { pname = name; ptype = !ty; pdefault = default; ploc } in
        if eat_punct t "," then go (p :: acc)
        else begin
          expect_punct t ")";
          (List.rev (p :: acc), false)
        end
      end
    in
    go []
  end

(* exception-specification: throw ( type-list? ) *)
and parse_throw_spec t : type_expr list option =
  if eat_kw t "throw" then begin
    expect_punct t "(";
    if eat_punct t ")" then Some []
    else begin
      let rec go acc =
        let ty = parse_type t ~allow_abstract:true in
        if eat_punct t "," then go (ty :: acc)
        else begin
          expect_punct t ")";
          Some (List.rev (ty :: acc))
        end
      in
      go []
    end
  end
  else None

(* ctor-initializers: ': name(args) (, name(args))*' *)
and parse_ctor_inits t : (string * expr list) list =
  if eat_punct t ":" then begin
    let rec go acc =
      let n = expect_ident t in
      let n =
        (* base-class initializer may be a template-id: Base<T>(...) *)
        if check_punct t "<" then begin
          advance t;
          let args = parse_template_args t in
          n ^ "<" ^ String.concat ", "
                      (List.map
                         (function
                           | TA_type ty -> type_to_string ty
                           | TA_expr e -> expr_to_string e)
                         args)
          ^ ">"
        end
        else n
      in
      expect_punct t "(";
      let args = parse_call_args t in
      if eat_punct t "," then go ((n, args) :: acc) else List.rev ((n, args) :: acc)
    in
    go []
  end
  else []

(* Skip a balanced brace block without parsing (used for error recovery). *)
and skip_balanced t =
  expect_punct t "{";
  let depth = ref 1 in
  while !depth > 0 do
    (match (cur t).tok with
     | Token.Punct "{" -> incr depth
     | Token.Punct "}" -> decr depth
     | Token.Eof -> err t "unexpected end of file inside braces"
     | _ -> ());
    advance t
  done

(* class definition after the class-key; [key_loc] is the location of the
   class keyword *)
and parse_class t key key_loc : class_def =
  let name =
    match (cur t).tok with
    | Token.Ident id ->
        advance t;
        let targs =
          if check_punct t "<" then begin
            (* specialization: class Stack<char> / partial: Stack<T*> *)
            advance t;
            Some (parse_template_args t)
          end
          else None
        in
        register_type t id;
        Some { id; targs }
    | _ -> None
  in
  let bases =
    if eat_punct t ":" then begin
      let rec go acc =
        let b_loc = loc t in
        let virt1 = eat_kw t "virtual" in
        let acc_spec =
          if eat_kw t "public" then Some Public
          else if eat_kw t "protected" then Some Protected
          else if eat_kw t "private" then Some Private
          else None
        in
        let virt = virt1 || eat_kw t "virtual" in
        let n = parse_qual_name t in
        let b = { b_access = acc_spec; b_virtual = virt; b_name = n; b_loc } in
        if eat_punct t "," then go (b :: acc) else List.rev (b :: acc)
      in
      go []
    end
    else []
  in
  let header_end = prev_loc t in
  let header = Srcloc.range key_loc header_end in
  if check_punct t "{" then begin
    let body_start = loc t in
    advance t;
    let class_id = Option.map (fun (p : name_part) -> p.id) name in
    let rec members acc =
      if check_punct t "}" then List.rev acc
      else if (cur t).tok = Token.Eof then
        err t "unexpected end of file in class body"
      else
        match parse_member t ?class_id () with
        | m -> members (m :: acc)
        | exception Parse_error (l, msg) when t.speculative = 0 ->
            record_recovery t l msg;
            sync_to_boundary t;
            members acc
    in
    let ms = members [] in
    let body_end = loc t in
    expect_punct t "}";
    { c_key = key; c_name = name; c_bases = bases; c_members = ms;
      c_header = header; c_body = Some (Srcloc.range body_start body_end) }
  end
  else
    { c_key = key; c_name = name; c_bases = bases; c_members = [];
      c_header = header; c_body = None }

and class_key_of_kw = function
  | "class" -> Class_key
  | "struct" -> Struct_key
  | "union" -> Union_key
  | k -> invalid_arg ("class_key_of_kw: " ^ k)

(* one member declaration inside a class body *)
and parse_member t ?class_id () : decl =
  with_depth t @@ fun () -> parse_member_body t ?class_id ()

and parse_member_body t ?class_id () : decl =
  let lo = loc t in
  match (cur t).tok with
  | Token.Kw (("public" | "protected" | "private") as k)
    when (peek_at t 0).tok = Token.Punct ":" ->
      advance t;
      advance t;
      let a = match k with
        | "public" -> Public
        | "protected" -> Protected
        | _ -> Private
      in
      { d = DAccess a; dloc = lo }
  | Token.Kw "friend" ->
      advance t;
      let inner = parse_member t ?class_id () in
      { d = DFriend inner; dloc = lo }
  | Token.Kw "template" -> parse_template t ?class_id ()
  | Token.Kw "typedef" -> parse_typedef t
  | Token.Kw "enum" -> parse_enum t
  | Token.Kw (("class" | "struct" | "union") as k)
    when (match (peek_at t 0).tok with
          | Token.Ident _ -> (
              match (peek_at t 1).tok with
              | Token.Punct ("{" | ":" | ";") -> true
              | _ -> false)
          | Token.Punct "{" -> true
          | _ -> false) ->
      advance t;
      let cd = parse_class t (class_key_of_kw k) lo in
      expect_punct t ";";
      { d = DClass cd; dloc = lo }
  | Token.Kw "using" ->
      advance t;
      let is_ns = eat_kw t "namespace" in
      let q = parse_qual_name t in
      expect_punct t ";";
      { d = DUsing (q, is_ns); dloc = lo }
  | Token.Punct ";" ->
      advance t;
      { d = DEmpty; dloc = lo }
  | _ -> parse_function_or_var t ?class_id ~in_class:true ()

and parse_typedef t : decl =
  let lo = loc t in
  advance t (* typedef *);
  let base = parse_type t ~allow_abstract:false in
  let ty = ref base in
  let rec prefixes () =
    if eat_punct t "*" then (ty := TPtr !ty; prefixes ())
    else if eat_punct t "&" then (ty := TRef !ty; prefixes ())
  in
  prefixes ();
  let name = expect_ident t in
  (* array suffix *)
  let rec dims acc =
    if eat_punct t "[" then begin
      let n = if check_punct t "]" then None else Some (parse_conditional t) in
      expect_punct t "]";
      dims (n :: acc)
    end
    else acc
  in
  List.iter (fun n -> ty := TArray (!ty, n)) (dims []);
  expect_punct t ";";
  register_type t name;
  { d = DTypedef (!ty, name); dloc = lo }

and parse_enum t : decl =
  let lo = loc t in
  advance t (* enum *);
  let name =
    match (cur t).tok with
    | Token.Ident id ->
        advance t;
        register_type t id;
        Some id
    | _ -> None
  in
  expect_punct t "{";
  let rec go acc =
    if eat_punct t "}" then List.rev acc
    else begin
      let eloc = loc t in
      let n = expect_ident t in
      let v = if eat_punct t "=" then Some (parse_conditional t) else None in
      ignore (eat_punct t ",");
      go ((n, v, eloc) :: acc)
    end
  in
  let items = go [] in
  expect_punct t ";";
  { d = DEnum (name, items); dloc = lo }

(* A function or variable declaration/definition, at namespace or class
   scope.  This is the workhorse: it parses decl-specifiers, then a
   (possibly qualified) declarator, and decides function vs variable by the
   presence of '('. *)
and parse_function_or_var t ?class_id ~in_class () : decl =
  let lo = loc t in
  let quals = ref no_quals in
  let storage = ref no_storage in
  let rec specs () =
    if eat_kw t "virtual" then (quals := { !quals with q_virtual = true }; specs ())
    else if eat_kw t "static" then (
      quals := { !quals with q_static = true };
      storage := { !storage with st_static = true };
      specs ())
    else if eat_kw t "inline" then (quals := { !quals with q_inline = true }; specs ())
    else if eat_kw t "explicit" then (quals := { !quals with q_explicit = true }; specs ())
    else if eat_kw t "extern" then (
      quals := { !quals with q_extern = true };
      storage := { !storage with st_extern = true };
      specs ())
    else if eat_kw t "mutable" then (storage := { !storage with st_mutable = true }; specs ())
    else if eat_kw t "register" then (storage := { !storage with st_register = true }; specs ())
  in
  specs ();
  (* constructor / destructor / conversion detection *)
  let is_ctor_like =
    match ((cur t).tok, class_id) with
    | Token.Ident id, Some cid when String.equal id cid -> (
        (* 'Stack(' or 'Stack<T>(' *)
        match (peek_at t 0).tok with
        | Token.Punct "(" -> true
        | Token.Punct "<" -> false (* member-decl Stack<..> var — rare; treat as type *)
        | _ -> false)
    | Token.Punct "~", _ -> true
    | Token.Kw "operator", _ -> true (* conversion op (no return type) *)
    | _ -> false
  in
  if is_ctor_like && in_class then parse_ctor_dtor_conv t ?class_id ~quals:!quals lo
  else begin
    (* Out-of-line ctor/dtor: Stack<T>::Stack / Qual::~Qual — detect by a
       qualified name whose last component is ctor-like, with no leading type *)
    let m = save t in
    match try_parse_qualified_ctor t ~quals:!quals lo with
    | Some d -> d
    | None ->
        restore t m;
        let ret = parse_type t ~allow_abstract:false in
        (* declarator prefixes *)
        let ty = ref ret in
        let rec prefixes () =
          if eat_punct t "*" then begin
            ty := TPtr !ty;
            let rec q () =
              if eat_kw t "const" then (ty := TConst !ty; q ())
              else if eat_kw t "volatile" then (ty := TVolatile !ty; q ())
            in
            q ();
            prefixes ()
          end
          else if eat_punct t "&" then (ty := TRef !ty; prefixes ())
        in
        prefixes ();
        let name = parse_qual_name ~in_expr:false t in
        if check_punct t "(" then begin
          advance t;
          let params, variadic = parse_params t in
          let const_m = eat_kw t "const" in
          let throw = parse_throw_spec t in
          let pure =
            if check_punct t "=" && (peek_at t 0).tok = Token.IntLit ("0", 0L) then begin
              advance t;
              advance t;
              true
            end
            else false
          in
          let header = Srcloc.range lo (prev_loc t) in
          let kind =
            match (last_part name).id with
            | s when String.length s >= 8 && String.sub s 0 8 = "operator" ->
                Fk_operator s
            | _ -> Fk_normal
          in
          let quals =
            { !quals with q_const = const_m; q_pure = pure }
          in
          let body, body_range =
            if check_punct t "{" then begin
              let bs = loc t in
              let b = parse_compound t in
              let be = prev_loc t in
              (Some b, Some (Srcloc.range bs be))
            end
            else begin
              expect_punct t ";";
              (None, None)
            end
          in
          { d =
              DFunction
                { f_name = name; f_kind = kind; f_ret = Some !ty; f_params = params;
                  f_variadic = variadic; f_quals = quals; f_inits = []; f_throw = throw;
                  f_body = body; f_header = header; f_body_range = body_range };
            dloc = lo }
        end
        else begin
          (* variable(s) *)
          match name.parts with
          | [ { id; targs = None } ] ->
              let rec dims acc =
                if eat_punct t "[" then begin
                  let n = if check_punct t "]" then None else Some (parse_conditional t) in
                  expect_punct t "]";
                  dims (n :: acc)
                end
                else acc
              in
              List.iter (fun n -> ty := TArray (!ty, n)) (dims []);
              let init =
                if eat_punct t "=" then EqInit (parse_assignment t)
                else if check_punct t "(" then begin
                  advance t;
                  CtorInit (parse_call_args t)
                end
                else NoInit
              in
              expect_punct t ";";
              { d =
                  DVar { v_name = id; v_type = !ty; v_init = init; v_loc = lo;
                         v_storage = !storage };
                dloc = lo }
          | _ ->
              (* qualified variable definition: e.g. int Stack::count = 0; *)
              let init = if eat_punct t "=" then EqInit (parse_assignment t) else NoInit in
              expect_punct t ";";
              { d =
                  DVar { v_name = qual_name_to_string name; v_type = !ty;
                         v_init = init; v_loc = lo; v_storage = !storage };
                dloc = lo }
        end
  end

(* in-class constructor, destructor or conversion operator *)
and parse_ctor_dtor_conv t ?class_id ~quals lo : decl =
  ignore class_id;
  let kind, name =
    match (cur t).tok with
    | Token.Punct "~" ->
        advance t;
        let n = expect_ident t in
        (Fk_dtor, "~" ^ n)
    | Token.Kw "operator" -> (Fk_conversion, parse_operator_name t)
    | Token.Ident id ->
        advance t;
        (Fk_ctor, id)
    | tok -> err t "expected constructor-like declarator, found %s" (Token.describe tok)
  in
  expect_punct t "(";
  let params, variadic = parse_params t in
  let const_m = eat_kw t "const" in
  let throw = parse_throw_spec t in
  let header = Srcloc.range lo (prev_loc t) in
  let inits = if kind = Fk_ctor then parse_ctor_inits t else [] in
  let body, body_range =
    if check_punct t "{" then begin
      let bs = loc t in
      let b = parse_compound t in
      (Some b, Some (Srcloc.range bs (prev_loc t)))
    end
    else begin
      expect_punct t ";";
      (None, None)
    end
  in
  { d =
      DFunction
        { f_name = simple_name name; f_kind = kind; f_ret = None; f_params = params;
          f_variadic = variadic; f_quals = { quals with q_const = const_m };
          f_inits = inits; f_throw = throw; f_body = body; f_header = header;
          f_body_range = body_range };
    dloc = lo }

(* out-of-line  Qual::Qual(...) / Qual::~Qual(...) with no return type *)
and try_parse_qualified_ctor t ~quals lo : decl option =
  match (cur t).tok with
  | Token.Ident _ -> (
      let m = save t in
      (* Speculate only through the qualified name and the Qual::Qual(
         pattern check.  Once the pattern matched we commit: the parameter
         list and body parse non-speculatively, so errors inside them are
         reported and recovered in place instead of silently backtracking. *)
      match
        speculating t @@ fun () ->
        let q = parse_qual_name ~in_expr:false t in
        match List.rev q.parts with
        | last :: prev :: _
          when check_punct t "("
               && (String.equal last.id prev.id
                   || (String.length last.id > 1
                       && last.id.[0] = '~'
                       && String.equal (String.sub last.id 1 (String.length last.id - 1)) prev.id)) ->
            Some (q, last)
        | _ -> None
      with
      | None | exception Parse_error _ ->
          restore t m;
          None
      | exception e ->
          restore t m;
          raise e
      | Some (q, last) ->
          let kind = if last.id.[0] = '~' then Fk_dtor else Fk_ctor in
          advance t;
          let params, variadic = parse_params t in
          let throw = parse_throw_spec t in
          let header = Srcloc.range lo (prev_loc t) in
          let inits = if kind = Fk_ctor then parse_ctor_inits t else [] in
          let body, body_range =
            if check_punct t "{" then begin
              let bs = loc t in
              let b = parse_compound t in
              (Some b, Some (Srcloc.range bs (prev_loc t)))
            end
            else begin
              expect_punct t ";";
              (None, None)
            end
          in
          Some
            { d =
                DFunction
                  { f_name = q; f_kind = kind; f_ret = None; f_params = params;
                    f_variadic = variadic; f_quals = quals; f_inits = inits;
                    f_throw = throw; f_body = body; f_header = header;
                    f_body_range = body_range };
              dloc = lo })
  | _ -> None

(* template declaration: 'template < params > decl', or explicit
   instantiation 'template decl;', or explicit specialization
   'template <> decl' *)
and parse_template t ?class_id () : decl =
  with_depth t @@ fun () -> parse_template_body t ?class_id ()

and parse_template_body t ?class_id () : decl =
  let lo = loc t in
  let start_pos = t.pos in
  advance t (* template *);
  if not (check_punct t "<") then begin
    (* explicit instantiation: template class Stack<int>; *)
    let inner = parse_toplevel_decl t in
    { d = DExplicitInst inner; dloc = lo }
  end
  else begin
    advance t;
    let tparams =
      if eat_punct t ">" then []
      else begin
        let rec go acc =
          let p =
            if eat_kw t "class" || eat_kw t "typename" then begin
              let n = expect_ident t in
              let default =
                if eat_punct t "=" then Some (parse_type t ~allow_abstract:true)
                else None
              in
              TP_type (n, default)
            end
            else if check_kw t "template" then begin
              advance t;
              expect_punct t "<";
              (* skip inner parameter list *)
              let depth = ref 1 in
              while !depth > 0 do
                (match (cur t).tok with
                 | Token.Punct "<" -> incr depth
                 | Token.Punct ">" -> decr depth
                 | Token.Punct ">>" -> depth := !depth - 2
                 | Token.Eof -> err t "unterminated template-template parameter"
                 | _ -> ());
                advance t
              done;
              ignore (eat_kw t "class");
              ignore (eat_kw t "typename");
              TP_template (expect_ident t)
            end
            else begin
              let ty = parse_type t ~allow_abstract:true in
              let n = expect_ident t in
              let default = if eat_punct t "=" then Some (parse_conditional t) else None in
              TP_nontype (ty, n, default)
            end
          in
          if eat_punct t "," then go (p :: acc)
          else begin
            (match (cur t).tok with
             | Token.Punct ">" -> advance t
             | Token.Punct ">>" -> split_gtgt t
             | _ -> err t "expected '>' closing template parameter list");
            List.rev (p :: acc)
          end
        in
        go []
      end
    in
    (* register type/template parameter names for the scope of the pattern *)
    let param_names =
      List.filter_map
        (function
          | TP_type (n, _) -> Some (n, `Type)
          | TP_template n -> Some (n, `Template)
          | TP_nontype _ -> None)
        tparams
    in
    List.iter
      (fun (n, k) ->
        register_type t n;
        if k = `Template then reg t.template_names n)
      param_names;
    (* The declared entity's name becomes a template name.  Peek it so that
       the pattern itself can use e.g. Stack<Object> recursively. *)
    peek_register_template t;
    let inner =
      match (cur t).tok with
      | Token.Kw "template" -> parse_template t ?class_id ()  (* member template of class template *)
      | Token.Kw (("class" | "struct" | "union") as k)
        when (match (peek_at t 0).tok with
              | Token.Ident _ -> true
              | Token.Punct "{" -> true
              | _ -> false)
             && not (is_elaborated_return t) ->
          let klo = loc t in
          advance t;
          let cd = parse_class t (class_key_of_kw k) klo in
          expect_punct t ";";
          { d = DClass cd; dloc = klo }
      | Token.Kw "typedef" -> parse_typedef t
      | _ -> parse_function_or_var t ?class_id ~in_class:(class_id <> None) ()
    in
    List.iter
      (fun (n, k) ->
        unreg t.type_names n;
        if k = `Template then unreg t.template_names n)
      param_names;
    let text = template_text t start_pos in
    { d = DTemplate (tparams, inner, text); dloc = lo }
  end

(* 'template <class T> class X {...}' vs 'template <class T> class X<T>::Y f()'
   — the latter (elaborated return type) is rare; approximate: it is a class
   template iff after the name comes '{', ':', ';' or '<...> {' *)
and is_elaborated_return t =
  match ((peek_at t 0).tok, (peek_at t 1).tok) with
  | Token.Ident _, Token.Punct ("{" | ":" | ";" | "<") -> false
  | Token.Punct "{", _ -> false
  | _ -> true

(* After 'template <...>', if the next tokens are 'class/struct IDENT' or a
   function-template 'ret IDENT (', register IDENT as a template name before
   parsing the pattern (so recursive uses resolve). *)
and peek_register_template t =
  let reg_if_ident (tk : Token.t) =
    match tk with Token.Ident id -> register_template_type t id | _ -> ()
  in
  match (cur t).tok with
  | Token.Kw ("class" | "struct" | "union") -> reg_if_ident (peek_at t 0).tok
  | _ ->
      (* scan a short window for 'IDENT (' (a function template) or
         'IDENT <' (a class-template id, e.g. an out-of-line member) after
         the return type; registering too eagerly is harmless for
         disambiguation purposes *)
      let rec scan i =
        if i > 12 then ()
        else
          match ((peek_at t (i - 1)).tok, (peek_at t i).tok) with
          | Token.Ident id, Token.Punct "(" -> register_template_func t id
          | Token.Ident id, Token.Punct "<" -> register_template_type t id
          | _, Token.Punct (";" | "{") -> ()
          | _ -> scan (i + 1)
      in
      scan 1

and template_text t start_pos =
  (* Reconstruct the raw text of tokens [start_pos, t.pos) *)
  let slice = Array.sub t.toks start_pos (max 0 (t.pos - start_pos)) in
  Token.text_of_toks (Array.to_list slice)

(* namespace-scope declaration *)
and parse_toplevel_decl t : decl =
  with_depth t @@ fun () -> parse_toplevel_decl_body t

(* recovering loop over namespace-scope declarations up to a closing '}' *)
and toplevel_decls_until_brace t ~what =
  let rec go acc =
    if eat_punct t "}" then List.rev acc
    else if (cur t).tok = Token.Eof then
      err t "unexpected end of file in %s" what
    else
      match parse_toplevel_decl t with
      | d -> go (d :: acc)
      | exception Parse_error (l, m) when t.speculative = 0 ->
          record_recovery t l m;
          sync_to_boundary t;
          go acc
  in
  go []

and parse_toplevel_decl_body t : decl =
  let lo = loc t in
  match (cur t).tok with
  | Token.Kw "namespace" -> (
      advance t;
      match (cur t).tok with
      | Token.Ident id ->
          advance t;
          if check_punct t "=" then begin
            (* namespace alias *)
            advance t;
            let target = parse_qual_name t in
            expect_punct t ";";
            { d = DUsing (target, true); dloc = lo }
          end
          else begin
            let body_start = loc t in
            expect_punct t "{";
            let ds = toplevel_decls_until_brace t ~what:"namespace body" in
            { d = DNamespace (Some id, ds, Srcloc.range body_start (prev_loc t)); dloc = lo }
          end
      | Token.Punct "{" ->
          let body_start = loc t in
          advance t;
          let ds = toplevel_decls_until_brace t ~what:"namespace body" in
          { d = DNamespace (None, ds, Srcloc.range body_start (prev_loc t)); dloc = lo }
      | tok -> err t "expected namespace name or '{', found %s" (Token.describe tok))
  | Token.Kw "using" ->
      advance t;
      let is_ns = eat_kw t "namespace" in
      let q = parse_qual_name t in
      expect_punct t ";";
      { d = DUsing (q, is_ns); dloc = lo }
  | Token.Kw "template" -> parse_template t ()
  | Token.Kw "typedef" -> parse_typedef t
  | Token.Kw "enum" -> parse_enum t
  | Token.Kw (("class" | "struct" | "union") as k)
    when (match (peek_at t 0).tok with
          | Token.Ident _ -> (
              match (peek_at t 1).tok with
              | Token.Punct ("{" | ":" | ";" | "<") -> true
              | _ -> false)
          | Token.Punct "{" -> true
          | _ -> false) ->
      advance t;
      let cd = parse_class t (class_key_of_kw k) lo in
      (* possibly 'class X {...} x, y;' — subset: only ';' *)
      expect_punct t ";";
      { d = DClass cd; dloc = lo }
  | Token.Punct ";" ->
      advance t;
      { d = DEmpty; dloc = lo }
  | Token.Kw "extern"
    when (match (peek_at t 0).tok with Token.StringLit _ -> true | _ -> false) ->
      (* extern "C" { ... } or extern "C" decl *)
      advance t;
      advance t;
      if check_punct t "{" then begin
        advance t;
        let ds = toplevel_decls_until_brace t ~what:"extern \"C\" block" in
        { d = DNamespace (None, ds, Srcloc.range lo (prev_loc t)); dloc = lo }
      end
      else parse_toplevel_decl t
  | _ -> parse_function_or_var t ~in_class:false ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let parse_translation_unit_inner ?limits ~diags ~file toks : translation_unit =
  let t = create ?limits ~diags toks in
  let rec go acc =
    match (cur t).tok with
    | Token.Eof -> List.rev acc
    | _ -> (
        match parse_toplevel_decl t with
        | d -> go (d :: acc)
        | exception Parse_error (l, m) -> (
            match record_recovery t l m with
            | () ->
                sync_to_boundary t;
                (* a stray '}' at file scope has no enclosing construct:
                   consume it so recovery makes progress *)
                (match (cur t).tok with
                 | Token.Punct "}" -> advance t
                 | _ -> ());
                go acc
            | exception Bail -> List.rev acc)
        | exception Bail -> List.rev acc
        | exception (Limits.Exceeded _ as e) ->
            (* budget breach: record once and return what parsed so far *)
            Diag.fatal_note diags (loc t) "%s" (Limits.describe e);
            List.rev acc)
  in
  { tu_file = file; tu_decls = go [] }

let parse_translation_unit ?limits ~diags ~file toks : translation_unit =
  let parse () = parse_translation_unit_inner ?limits ~diags ~file toks in
  if Pdt_util.Trace.on () then
    Pdt_util.Trace.span ~cat:"parse"
      ~args:[ ("file", Pdt_util.Trace.Str file) ]
      "parse.tu" parse
  else parse ()
