(* The PDT benchmark & reproduction harness.

   Part 1 regenerates every table and figure of the paper as a deterministic
   artifact (the paper's evaluation is qualitative: worked tool outputs).
   Part 2 adds quantitative benchmarks (bechamel micro-benchmarks and
   deterministic sweeps) for the performance claims made in prose:

     B1  used-mode vs automatic (prelinker) instantiation      (paper §2)
     B2  pdbmerge duplicate-instantiation elimination          (Table 2)
     B3  front-end / analyzer throughput                       (infrastructure)
     B4  TAU instrumentation overhead                          (§4.1)
     B5  DUCTAPE query costs                                   (§3.3)
     B6  parallel incremental project builds                   (pdbbuild)
     B7  PDB I/O throughput: parse / write / merge             (machine-
         readable record in BENCH_pdb_io.json)
     B10 container scaling, ASCII vs PDB-B binary mmap         (machine-
         readable record in BENCH_pdb_scale.json)
     B13 semantic analyses: define-use chains and MHP          (machine-
         readable record in BENCH_pdb_semantic.json)

   The merge benchmarks honor a --domains 1,2,4,8 request (comma list);
   counts the host cannot really parallelize are recorded as skipped.

   See EXPERIMENTS.md for the paper-vs-measured record. *)

module D = Pdt_ductape.Ductape
module P = Pdt_pdb.Pdb

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* Shared compilations                                                 *)
(* ------------------------------------------------------------------ *)

let stack_compiled =
  lazy
    (let vfs = Pdt_workloads.Stack.vfs () in
     (vfs, Pdt.compile_exn ~vfs Pdt_workloads.Stack.main_file))

let stack_pdb = lazy (Pdt_analyzer.Analyzer.run (snd (Lazy.force stack_compiled)).Pdt.program)
let stack_d = lazy (D.index (Lazy.force stack_pdb))

(* ------------------------------------------------------------------ *)
(* Figure / table artifacts                                            *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1: the templated Stack program (input corpus)";
  let lines = String.split_on_char '\n' Pdt_workloads.Stack.stackar_h in
  List.iteri (fun i l -> if i < 24 then print_endline l) lines;
  Printf.printf "... (%d source files, see lib/workloads/stack.ml)\n"
    (List.length Pdt_workloads.Stack.files)

let fig3 () =
  section "Figure 3: PDB excerpts for the Stack code";
  let pdb = Lazy.force stack_pdb in
  let s = Pdt_pdb.Pdb_write.to_string pdb in
  (* print the header, the Stack template, the push routine and Stack<int> —
     the items Figure 3 shows *)
  let blocks = String.split_on_char '\n' s in
  let want prefixes line =
    List.exists
      (fun p -> String.length line >= String.length p && String.sub line 0 (String.length p) = p)
      prefixes
  in
  let printing = ref false in
  List.iter
    (fun line ->
      if line = "" then printing := false
      else if want [ "<PDB"; "so#"; "te#2 "; "cl#" ] line then printing := true
      else if want [ "ro#" ] line then begin
        (* routines named push / isFull, as in the figure *)
        printing :=
          want [ "ro#" ] line
          && (let has sub =
                let n = String.length line and m = String.length sub in
                let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
                go 0
              in
              has " push" || has " isFull" || has " main")
      end;
      if !printing then print_endline line)
    blocks;
  sub "summary";
  Printf.printf
    "items: %d files, %d namespaces, %d templates, %d routines, %d classes, %d types, %d macros\n"
    (List.length pdb.P.files) (List.length pdb.P.namespaces)
    (List.length pdb.P.templates) (List.length pdb.P.routines)
    (List.length pdb.P.classes) (List.length pdb.P.types)
    (List.length pdb.P.pdb_macros)

let table1 () =
  section "Table 1: PDB item types, attributes and prefixes";
  let pdb = Lazy.force stack_pdb in
  let s = Pdt_pdb.Pdb_write.to_string pdb in
  let count_attr a =
    List.length
      (List.filter
         (fun line ->
           String.length line > String.length a
           && String.sub line 0 (String.length a) = a)
         (String.split_on_char '\n' s))
  in
  Printf.printf "%-12s %-8s %s\n" "Item type" "Prefix" "attribute lines emitted";
  Printf.printf "%-12s %-8s sinc=%d\n" "SOURCE FILES" "so" (count_attr "sinc ");
  Printf.printf "%-12s %-8s rloc=%d rclass=%d rsig=%d rcall=%d rtempl=%d rpos=%d\n"
    "ROUTINES" "ro" (count_attr "rloc ") (count_attr "rclass ") (count_attr "rsig ")
    (count_attr "rcall ") (count_attr "rtempl ") (count_attr "rpos ");
  Printf.printf "%-12s %-8s ckind=%d ctempl=%d cfunc=%d cmem=%d cpos=%d\n" "CLASSES" "cl"
    (count_attr "ckind ") (count_attr "ctempl ") (count_attr "cfunc ")
    (count_attr "cmem ") (count_attr "cpos ");
  Printf.printf "%-12s %-8s ykind=%d yrett=%d yargt=%d\n" "TYPES" "ty"
    (count_attr "ykind ") (count_attr "yrett ") (count_attr "yargt ");
  Printf.printf "%-12s %-8s tkind=%d ttext=%d\n" "TEMPLATES" "te" (count_attr "tkind ")
    (count_attr "ttext ");
  Printf.printf "%-12s %-8s nmem=%d\n" "NAMESPACES" "na" (count_attr "nmem ");
  Printf.printf "%-12s %-8s makind=%d matext=%d\n" "MACROS" "ma" (count_attr "makind ")
    (count_attr "matext ")

let fig4 () =
  section "Figure 4: the DUCTAPE item hierarchy";
  let d = Lazy.force stack_d in
  let items = D.items d in
  let count p = List.length (List.filter p items) in
  Printf.printf "pdbSimpleItem (all items)        : %d\n" (List.length items);
  Printf.printf "  pdbFile                        : %d\n"
    (count (function D.File _ -> true | _ -> false));
  Printf.printf "  pdbItem                        : %d\n" (count D.is_item);
  Printf.printf "    pdbMacro                     : %d\n"
    (count (function D.Macro _ -> true | _ -> false));
  Printf.printf "    pdbType                      : %d\n"
    (count (function D.Type _ -> true | _ -> false));
  Printf.printf "    pdbFatItem                   : %d\n" (count D.is_fat_item);
  Printf.printf "      pdbTemplate                : %d\n"
    (count (function D.Template _ -> true | _ -> false));
  Printf.printf "      pdbNamespace               : %d\n"
    (count (function D.Namespace _ -> true | _ -> false));
  Printf.printf "      pdbTemplateItem            : %d\n" (count D.is_template_item);
  Printf.printf "        pdbClass                 : %d\n"
    (count (function D.Class _ -> true | _ -> false));
  Printf.printf "        pdbRoutine               : %d\n"
    (count (function D.Routine _ -> true | _ -> false));
  Printf.printf "template instantiations (list<pdbTemplateItem>): %d\n"
    (List.length (D.template_items d))

let table2_fig5 () =
  section "Table 2 / Figure 5: the DUCTAPE utilities on the Stack PDB";
  let d = Lazy.force stack_d in
  sub "pdbtree: file inclusion";
  print_string (Pdt_tools.Pdbtree.include_tree d);
  sub "pdbtree: class hierarchy";
  print_string (Pdt_tools.Pdbtree.class_hierarchy d);
  sub "pdbtree: static call graph (the Figure 5 routine)";
  print_string (Pdt_tools.Pdbtree.call_graph d);
  sub "pdbconv (first lines)";
  let conv = Pdt_tools.Pdbconv.convert d in
  String.split_on_char '\n' conv |> List.filteri (fun i _ -> i < 8) |> List.iter print_endline;
  sub "pdbhtml";
  Printf.printf "%d HTML pages generated\n" (List.length (Pdt_tools.Pdbhtml.generate d));
  sub "pdbmerge (3 TUs sharing instantiations)";
  let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:3 () in
  let pdbs =
    List.map (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program) files
  in
  let _, stats = Pdt_tools.Pdbmerge.merge pdbs in
  print_endline (Pdt_tools.Pdbmerge.stats_to_string stats)

let fig6_fig7 () =
  section "Figures 6 & 7: TAU instrumentation and the Krylov-solver profile";
  let vfs = Pdt_workloads.Pooma_like.vfs ~n:24 () in
  let main = Pdt_workloads.Pooma_like.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  sub "instrumentation plan (the Figure 6 filter)";
  List.iter
    (fun (ir : Pdt_tau.Instrument.item_ref) ->
      Printf.printf "  %-12s %-18s line %-4d %s\n" ir.ir_name ir.ir_file ir.ir_line
        (if ir.ir_use_ct_this then "CT(*this)" else "\"" ^ ir.ir_signature ^ "\""))
    plan;
  let vfs', _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  let c' = Pdt.compile_exn ~vfs:vfs' main in
  let r = Pdt_tau.Interp.run c'.Pdt.program in
  sub "program output";
  print_string r.output;
  sub "profile (the Figure 7 display)";
  print_string (Pdt_tau.Pprof.format ~title:"TAU profile: Krylov solver (CG, n=24)" r.profile)

let fig8 () =
  section "Figure 8: SILOON bridging-code generation for the Stack library";
  let d = Lazy.force stack_d in
  let plan = Pdt_siloon.Siloon.plan d in
  Printf.printf "exported classes   : %d\n" (List.length plan.Pdt_siloon.Siloon.classes);
  Printf.printf "exported functions : %d\n" (List.length plan.Pdt_siloon.Siloon.functions);
  let bridge = Pdt_siloon.Siloon.generate_bridge d plan in
  let perl = Pdt_siloon.Siloon.generate_perl d plan ~module_name:"StackLib" in
  let py = Pdt_siloon.Siloon.generate_python d plan ~module_name:"StackLib" in
  Printf.printf "bridge code        : %d lines\n"
    (List.length (String.split_on_char '\n' bridge));
  Printf.printf "perl wrapper       : %d lines\n"
    (List.length (String.split_on_char '\n' perl));
  Printf.printf "python wrapper     : %d lines\n"
    (List.length (String.split_on_char '\n' py));
  sub "bridge excerpt: the Stack<int>::push binding";
  String.split_on_char '\n' bridge
  |> List.filter (fun l ->
         let has sub =
           let n = String.length l and m = String.length sub in
           let rec go i = i + m <= n && (String.sub l i m = sub || go (i + 1)) in
           go 0
         in
         has "Stack_Lint_G__push")
  |> List.iter print_endline

let parallel_profile () =
  section "Parallel profiling: SPMD stencil over 4 simulated ranks (pprof -s)";
  let vfs = Pdt_workloads.Parallel_stencil.vfs () in
  let main = Pdt_workloads.Parallel_stencil.main_file in
  let c = Pdt.compile_exn ~vfs main in
  let d = D.index (Pdt_analyzer.Analyzer.run c.Pdt.program) in
  let plan = Pdt_tau.Instrument.plan d in
  let vfs2, _ = Pdt_tau.Instrument.instrument_vfs vfs plan in
  let prog = (Pdt.compile_exn ~vfs:vfs2 main).Pdt.program in
  let rs = Pdt_tau.Parallel.run_ranks ~nranks:4 prog in
  List.iter
    (fun (rr : Pdt_tau.Parallel.rank_result) -> print_string rr.result.output)
    rs;
  print_newline ();
  print_string (Pdt_tau.Parallel.format_summary rs)

(* ------------------------------------------------------------------ *)
(* B1: used-mode vs automatic instantiation (paper §2)                 *)
(* ------------------------------------------------------------------ *)

let b1_instantiation_modes () =
  section "B1: used-mode vs automatic (prelinker) template instantiation (§2)";
  Printf.printf "%-14s %-14s %-18s %-20s %-18s\n" "chain length" "used: passes"
    "used: IL entities" "auto: prelink rounds" "auto: IL entities";
  List.iter
    (fun n_templates ->
      let cfg =
        { Pdt_workloads.Generator.default_config with
          n_class_templates = n_templates; chain_depth = 2 }
      in
      let src = Pdt_workloads.Generator.single_file_program ~cfg () in
      let c = Pdt.compile_string src in
      let rep = Pdt_prelink.Prelink.simulate c.Pdt.program in
      Printf.printf "%-14d %-14d %-18d %-20d %-18d\n" n_templates 1
        rep.Pdt_prelink.Prelink.used_mode_il_entities
        rep.Pdt_prelink.Prelink.rounds
        rep.Pdt_prelink.Prelink.automatic_mode_il_entities)
    [ 2; 4; 6; 8; 10; 12 ];
  print_endline
    "(used mode: one compilation pass, every instantiation visible in the IL;\n\
     \ automatic: instantiations live in object files only — invisible to tools —\n\
     \ and deeper template chains force more prelink/recompile rounds)"

(* ------------------------------------------------------------------ *)
(* B2: pdbmerge duplicate elimination                                  *)
(* ------------------------------------------------------------------ *)

let b2_pdbmerge_scaling () =
  section "B2: pdbmerge duplicate-instantiation elimination (Table 2)";
  Printf.printf "%-6s %-14s %-14s %-22s %-10s\n" "TUs" "items before" "items after"
    "dup instantiations" "ratio";
  List.iter
    (fun n_tus ->
      let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus () in
      let pdbs =
        List.map
          (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
          files
      in
      let _, stats = Pdt_tools.Pdbmerge.merge pdbs in
      Printf.printf "%-6d %-14d %-14d %-22d %.2f\n" n_tus
        stats.Pdt_tools.Pdbmerge.items_before stats.Pdt_tools.Pdbmerge.items_after
        stats.Pdt_tools.Pdbmerge.duplicate_instantiations
        (float_of_int stats.Pdt_tools.Pdbmerge.items_before
         /. float_of_int (max 1 stats.Pdt_tools.Pdbmerge.items_after)))
    [ 2; 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* B3-B5: bechamel micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  section "B3/B4/B5: timing micro-benchmarks (bechamel, OLS ns/run)";
  let open Bechamel in
  let open Toolkit in
  (* workloads prepared outside the timed region *)
  let small_src =
    Pdt_workloads.Generator.single_file_program
      ~cfg:{ Pdt_workloads.Generator.default_config with n_class_templates = 4 } ()
  in
  let large_src =
    Pdt_workloads.Generator.single_file_program
      ~cfg:{ Pdt_workloads.Generator.default_config with
             n_class_templates = 16; methods_per_class = 6 } ()
  in
  let stack_vfs, stack_c = Lazy.force stack_compiled in
  let stack_pdb_text = Pdt_pdb.Pdb_write.to_string (Lazy.force stack_pdb) in
  let merge_pdbs =
    let vfs, files = Pdt_workloads.Generator.project_vfs ~n_tus:4 () in
    List.map (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program) files
  in
  let instr_prog =
    let d = Lazy.force stack_d in
    let plan = Pdt_tau.Instrument.plan d in
    let vfs2, _ = Pdt_tau.Instrument.instrument_vfs stack_vfs plan in
    (Pdt.compile_exn ~vfs:vfs2 Pdt_workloads.Stack.main_file).Pdt.program
  in
  let lex_only src () =
    let diags = Pdt_util.Diag.create () in
    ignore (Pdt_lex.Lexer.tokenize ~diags ~file:"bench.cpp" src)
  in
  let full_compile src () = ignore (Pdt.compile_string src) in
  let tests =
    [ Test.make ~name:"b3/lex-small" (Staged.stage (lex_only small_src));
      Test.make ~name:"b3/lex-large" (Staged.stage (lex_only large_src));
      Test.make ~name:"b3/compile-small" (Staged.stage (full_compile small_src));
      Test.make ~name:"b3/compile-large" (Staged.stage (full_compile large_src));
      Test.make ~name:"b3/analyze-stack"
        (Staged.stage (fun () ->
             ignore (Pdt_analyzer.Analyzer.run stack_c.Pdt.program)));
      Test.make ~name:"b3/pdb-parse"
        (Staged.stage (fun () -> ignore (Pdt_pdb.Pdb_parse.of_string stack_pdb_text)));
      Test.make ~name:"b2/merge-4tu"
        (Staged.stage (fun () -> ignore (D.merge merge_pdbs)));
      Test.make ~name:"b4/run-plain"
        (Staged.stage (fun () -> ignore (Pdt_tau.Interp.run stack_c.Pdt.program)));
      Test.make ~name:"b4/run-instrumented"
        (Staged.stage (fun () -> ignore (Pdt_tau.Interp.run instr_prog)));
      Test.make ~name:"b5/index+calltree"
        (Staged.stage (fun () ->
             let d = D.index (Lazy.force stack_pdb) in
             ignore (D.call_tree d)));
      Test.make ~name:"b5/class-hierarchy"
        (Staged.stage (fun () ->
             ignore (D.class_hierarchy (Lazy.force stack_d))));
      Test.make ~name:"b5/include-tree"
        (Staged.stage (fun () -> ignore (D.include_tree (Lazy.force stack_d)))) ]
  in
  let grouped = Test.make_grouped ~name:"pdt" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-28s %16s\n" "benchmark" "ns/run (OLS)";
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ e ] -> Printf.printf "%-28s %16.0f\n" name e
      | Some es ->
          Printf.printf "%-28s %16s\n" name
            (String.concat "," (List.map (Printf.sprintf "%.0f") es))
      | None -> Printf.printf "%-28s %16s\n" name "n/a")
    rows;
  (* headline overhead figure for B4 *)
  let find n =
    List.fold_left
      (fun acc (name, est) ->
        if name = n then
          match Analyze.OLS.estimates est with Some [ e ] -> Some e | _ -> acc
        else acc)
      None rows
  in
  (match (find "pdt b4/run-plain", find "pdt b4/run-instrumented") with
   | Some p, Some i when p > 0.0 ->
       Printf.printf "\nB4: instrumentation overhead (wall): %.2fx\n" (i /. p)
   | _ -> ());
  (* deterministic virtual-cycle view of the same overhead *)
  let plain = Pdt_tau.Interp.run stack_c.Pdt.program in
  let instr = Pdt_tau.Interp.run instr_prog in
  Printf.printf "B4: instrumentation overhead (virtual cycles): %Ld -> %Ld (%.2fx)\n"
    plain.cycles instr.cycles
    (Int64.to_float instr.cycles /. Int64.to_float plain.cycles)

(* ------------------------------------------------------------------ *)
(* B6: parallel incremental project builds                             *)
(* ------------------------------------------------------------------ *)

let b6_parallel_build () =
  section "B6: parallel incremental project builds (pdbbuild driver)";
  let n_tus = 12 in
  (* heavier per-TU compiles than the default config, so cache and pool
     effects dominate the fixed costs *)
  let cfg =
    { Pdt_workloads.Generator.default_config with
      n_class_templates = 16; methods_per_class = 6; chain_depth = 4;
      n_instantiation_types = 5 }
  in
  let project () = Pdt_workloads.Generator.project_vfs ~cfg ~n_tus () in
  let run ?cache_dir ~domains label =
    let vfs, sources = project () in
    let r =
      Pdt_build.Build.build
        ~options:{ Pdt_build.Build.default_options with domains; cache_dir }
        ~vfs sources
    in
    Printf.printf "%-24s %s\n" label (Pdt_build.Build.summary r);
    r
  in
  Printf.printf "project: %d TUs + main, shared template header\n\n" n_tus;
  let seq = run ~domains:1 "sequential (1 domain)" in
  let par = run ~domains:4 "parallel (4 domains)" in
  let cache_dir =
    let f = Filename.temp_file "pdt-bench-b6" ".cache" in
    Sys.remove f; f
  in
  let cold = run ~cache_dir ~domains:4 "cold cache (4 domains)" in
  let warm = run ~cache_dir ~domains:1 "warm cache (1 domain)" in
  let digest (r : Pdt_build.Build.result) = Pdt_pdb.Pdb_digest.of_pdb r.merged in
  Printf.printf "\nparallel speedup over sequential : %.2fx (%.3fs -> %.3fs wall)\n"
    (seq.wall_seconds /. par.wall_seconds) seq.wall_seconds par.wall_seconds;
  Printf.printf "warm-cache speedup over sequential: %.2fx (%.3fs -> %.3fs wall)\n"
    (seq.wall_seconds /. warm.wall_seconds) seq.wall_seconds warm.wall_seconds;
  Printf.printf "merged PDB digest %s, identical across all four builds: %b\n"
    (digest seq)
    (List.for_all (fun r -> digest r = digest seq) [ par; cold; warm ])

(* ------------------------------------------------------------------ *)
(* B7: PDB I/O throughput                                              *)
(* ------------------------------------------------------------------ *)

(* The domain curve the merge benchmarks honor.  A requested count the
   host cannot actually parallelize (more domains than cores) is never
   silently clamped or run oversubscribed — it is recorded as skipped,
   with the host's core count, so a curve produced on a small container
   is explicit about what it could not measure rather than reporting a
   fake 1.0x speedup from a degraded run. *)
let requested_domains () =
  let default = [ 1; 2; 4; 8 ] in
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = "--domains" then
      let l =
        String.split_on_char ',' Sys.argv.(i + 1)
        |> List.filter_map int_of_string_opt
        |> List.filter (fun d -> d >= 1)
        |> List.sort_uniq compare
      in
      if l = [] then default else l
    else find (i + 1)
  in
  find 1

let b7_pdb_io ~quick ~domains () =
  section "B7: PDB I/O throughput (single-pass parser, parallel tree merge)";
  (* corpus: the PDBs of a template-heavy generated project — the same
     shape the cache and the merge chew on in a real build *)
  let n_tus = if quick then 6 else 16 in
  let cfg =
    { Pdt_workloads.Generator.default_config with
      n_class_templates = (if quick then 12 else 24);
      methods_per_class = 6; chain_depth = 4;
      n_instantiation_types = (if quick then 4 else 6) }
  in
  let vfs, files = Pdt_workloads.Generator.project_vfs ~cfg ~n_tus () in
  let pdbs =
    List.map
      (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
      files
  in
  let texts = List.map Pdt_pdb.Pdb_write.to_string pdbs in
  let total_bytes = List.fold_left (fun a s -> a + String.length s) 0 texts in
  let mb = float_of_int total_bytes /. 1048576.0 in
  let reps = if quick then 3 else 7 in
  (* Single-threaded ops (parse, write) are timed in process CPU time
     ([Sys.time] = CLOCK_PROCESS_CPUTIME_ID, µs resolution): on a shared
     container, wall time includes whatever the neighbors are doing, and
     that additive noise compresses the parse-speedup ratio toward 1.
     CPU time equals wall time on quiet hardware and excludes only the
     stolen slices.  The merges are timed in wall time — process CPU time
     sums over domains, which would hide parallelism by construction.
     Every timed run starts from a normalized heap (dead major garbage
     collected), so one op's leftovers don't inflate the next op's GC. *)
  let cpu_once f =
    Gc.full_major ();
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let wall_once f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best time_once f =
    let best = ref infinity in
    for _ = 1 to reps do
      let dt = time_once f in
      if dt < !best then best := dt
    done;
    !best
  in
  let parse_all () =
    List.iter (fun s -> ignore (Pdt_pdb.Pdb_parse.of_string s)) texts
  in
  let parse_all_seed () =
    List.iter (fun s -> ignore (Pdt_pdb.Pdb_parse_ref.of_string s)) texts
  in
  Pdt_util.Intern.clear ();
  parse_all ();  (* warm-up populates the pool; steady state is all hits *)
  (* the two parsers are compared as a ratio, so interleave their reps:
     a load spike hits both, not whichever one owned that time slice *)
  let parse_reps = if quick then 5 else 15 in
  let t_parse = ref infinity and t_parse_seed = ref infinity in
  for _ = 1 to parse_reps do
    t_parse := min !t_parse (cpu_once parse_all);
    t_parse_seed := min !t_parse_seed (cpu_once parse_all_seed)
  done;
  let t_parse = !t_parse and t_parse_seed = !t_parse_seed in
  let istats = Pdt_util.Intern.stats () in
  let ihit = Pdt_util.Intern.hit_rate () in
  let t_write =
    best cpu_once (fun () ->
        List.iter (fun p -> ignore (Pdt_pdb.Pdb_write.to_string p)) pdbs)
  in
  let t_merge_seq = best wall_once (fun () -> ignore (D.merge pdbs)) in
  (* time the parallel merge at every requested domain count the host can
     actually provide; the rest of the curve is recorded as skipped.  The
     byte-identity check below always forces the multi-domain chunked
     path, since correctness must not depend on the host *)
  let cores = Domain.recommended_domain_count () in
  let merge_curve =
    List.map
      (fun d ->
        if d <= cores then
          ( d,
            Some
              (best wall_once (fun () ->
                   ignore (Pdt_build.Merge_par.merge ~domains:d pdbs))) )
        else (d, None))
      domains
  in
  let best_par =
    List.fold_left
      (fun acc (d, t) ->
        match (t, acc) with
        | Some t, Some (_, bt) when d > 1 && t < bt -> Some (d, t)
        | Some t, None when d > 1 -> Some (d, t)
        | _ -> acc)
      None merge_curve
  in
  let merged_seq = Pdt_pdb.Pdb_write.to_string (D.merge pdbs) in
  let merged_par =
    Pdt_pdb.Pdb_write.to_string (Pdt_build.Merge_par.merge ~domains:4 pdbs)
  in
  let identical = String.equal merged_seq merged_par in
  let ns t = t *. 1e9 in
  let mbs t = if t > 0.0 then mb /. t else 0.0 in
  Printf.printf "corpus: %d PDBs, %d bytes (%.2f MiB); best of %d\n\n"
    (List.length texts) total_bytes mb reps;
  Printf.printf "%-28s %14s %10s\n" "operation (whole corpus)" "ns/op" "MB/s";
  let row name t with_tp =
    Printf.printf "%-28s %14.0f %10s\n" name (ns t)
      (if with_tp then Printf.sprintf "%.1f" (mbs t) else "-")
  in
  row "parse (single-pass)" t_parse true;
  row "parse (seed reference)" t_parse_seed true;
  row "write" t_write true;
  row "merge sequential" t_merge_seq false;
  List.iter
    (fun (d, t) ->
      match t with
      | Some t -> row (Printf.sprintf "merge parallel (%d dom)" d) t false
      | None ->
          Printf.printf "%-28s %14s %10s  (host has %d core%s)\n"
            (Printf.sprintf "merge parallel (%d dom)" d) "skipped" "-" cores
            (if cores = 1 then "" else "s"))
    merge_curve;
  Printf.printf "\nparse speedup vs seed parser    : %.2fx\n" (t_parse_seed /. t_parse);
  (match best_par with
   | Some (d, t) ->
       Printf.printf
         "merge speedup parallel vs flat  : %.2fx at %d domains (byte-identical: %b)\n"
         (t_merge_seq /. t) d identical
   | None ->
       Printf.printf
         "merge speedup parallel vs flat  : skipped — host has %d core%s, no \
          multi-domain point measurable (byte-identical: %b)\n"
         cores (if cores = 1 then "" else "s") identical);
  Printf.printf "intern: %d entries, %d hits, %d misses (%.1f%% hit rate)\n"
    istats.Pdt_util.Intern.entries istats.Pdt_util.Intern.hits
    istats.Pdt_util.Intern.misses (100.0 *. ihit);
  let oc = open_out "BENCH_pdb_io.json" in
  let curve_json =
    String.concat ",\n"
      (List.map
         (fun (d, t) ->
           match t with
           | Some t ->
               Printf.sprintf
                 "    { \"domains\": %d, \"ns_per_op\": %.0f, \"skipped\": false }"
                 d (ns t)
           | None ->
               Printf.sprintf
                 "    { \"domains\": %d, \"skipped\": true, \"host_cores\": %d }"
                 d cores)
         merge_curve)
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pdb_io\",\n\
    \  \"quick\": %b,\n\
    \  \"pdb_bytes\": %d,\n\
    \  \"inputs\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"parse\": { \"ns_per_op\": %.0f, \"mb_per_s\": %.2f },\n\
    \  \"parse_seed\": { \"ns_per_op\": %.0f, \"mb_per_s\": %.2f },\n\
    \  \"parse_speedup\": %.2f,\n\
    \  \"write\": { \"ns_per_op\": %.0f, \"mb_per_s\": %.2f },\n\
    \  \"merge_sequential\": { \"ns_per_op\": %.0f },\n\
    \  \"merge_parallel\": [\n%s\n  ],\n\
    \  \"merge_speedup\": %s,\n\
    \  \"merge_identical\": %b,\n\
    \  \"intern\": { \"entries\": %d, \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f }\n\
     }\n"
    quick total_bytes (List.length texts) cores
    (ns t_parse) (mbs t_parse)
    (ns t_parse_seed) (mbs t_parse_seed)
    (t_parse_seed /. t_parse)
    (ns t_write) (mbs t_write)
    (ns t_merge_seq)
    curve_json
    (match best_par with
     | Some (_, t) -> Printf.sprintf "%.2f" (t_merge_seq /. t)
     | None -> "null")
    identical
    istats.Pdt_util.Intern.entries istats.Pdt_util.Intern.hits
    istats.Pdt_util.Intern.misses ihit;
  close_out oc;
  print_endline "wrote BENCH_pdb_io.json"

(* ------------------------------------------------------------------ *)
(* B8: tracing overhead                                                *)
(* ------------------------------------------------------------------ *)

let b8_trace_overhead ~quick () =
  section "B8: tracing overhead (span layer; disabled spans are one flag load)";
  let module T = Pdt_util.Trace in
  let n_tus = if quick then 6 else 12 in
  let build ~traced () =
    let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
    if traced then T.start ();
    let t0 = Unix.gettimeofday () in
    let r =
      Pdt_build.Build.build
        ~options:{ Pdt_build.Build.default_options with domains = 4; cache_dir = None }
        ~vfs sources
    in
    let dt = Unix.gettimeofday () -. t0 in
    if traced then T.stop ();
    assert (r.Pdt_build.Build.failed = 0);
    dt
  in
  ignore (build ~traced:false ());  (* warm up allocators and code paths *)
  let reps = if quick then 3 else 5 in
  (* best-of-N: overhead is a difference of small numbers, so take the
     noise floor of each configuration rather than a mean *)
  let best f = List.fold_left min infinity (List.init reps (fun _ -> f ())) in
  let off = best (build ~traced:false) in
  let on = best (build ~traced:true) in
  let events =
    List.fold_left (fun acc (_, evs) -> acc + List.length evs) 0 (T.tracks ())
  in
  (* the disabled path itself: a span call with tracing off *)
  T.stop ();
  let n = 2_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    sink := !sink + T.span ~cat:"b8" "noop" (fun () -> i land 1)
  done;
  let disabled_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
  ignore (Sys.opaque_identity !sink);
  let overhead_pct = (on -. off) /. off *. 100.0 in
  Printf.printf "project: %d TUs + main, 4 domains, no cache, best of %d\n\n"
    n_tus reps;
  Printf.printf "build, tracing off        : %.3fs\n" off;
  Printf.printf "build, tracing on         : %.3fs  (%d events captured)\n" on events;
  Printf.printf "enabled overhead          : %+.1f%%\n" overhead_pct;
  Printf.printf "disabled span call        : %.1f ns  (acceptance: off-path <= 2%% of build)\n"
    disabled_ns;
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"trace_overhead\",\n\
    \  \"quick\": %b,\n\
    \  \"n_tus\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"build_off_s\": %.4f,\n\
    \  \"build_on_s\": %.4f,\n\
    \  \"enabled_overhead_pct\": %.2f,\n\
    \  \"events\": %d,\n\
    \  \"dropped_events\": %d,\n\
    \  \"disabled_span_ns\": %.1f\n\
     }\n"
    quick n_tus reps off on overhead_pct events (T.dropped_events ()) disabled_ns;
  close_out oc;
  print_endline "wrote BENCH_trace.json"

(* ------------------------------------------------------------------ *)
(* B9: edit-rebuild latency, cold vs incremental                       *)
(* ------------------------------------------------------------------ *)

let b9_incremental ~quick () =
  section "B9: edit-rebuild latency (cold build vs --incremental)";
  let module I = Pdt_build.Incremental in
  let module B = Pdt_build.Build in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let n_tus = if quick then 8 else 24 in
  let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
  let cache_dir = Filename.temp_file "pdt-bench-b9" ".cache" in
  Sys.remove cache_dir;
  let domains = 4 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let rebuild () =
    I.build
      ~options:
        { I.default_options with
          build = { B.default_options with domains; cache_dir = Some cache_dir } }
      ~vfs sources
  in
  let cold () =
    B.build
      ~options:{ B.default_options with domains; cache_dir = None }
      ~vfs sources
  in
  let append path extra =
    match Pdt_util.Vfs.read_raw vfs path with
    | Some c -> Pdt_util.Vfs.add_file vfs path (c ^ extra)
    | None -> failwith ("b9: missing " ^ path)
  in
  let reps = if quick then 3 else 5 in
  let best f = List.fold_left min infinity (List.init reps (fun _ -> f ())) in
  ignore (cold ());                      (* warm up code paths *)
  let cold_s = best (fun () -> fst (time cold)) in
  let seed_s, seed = time rebuild in        (* populates cache + state *)
  assert (List.length seed.I.units = n_tus + 1);
  (* each rep appends a fresh declaration so the edit is never a no-op *)
  let n = ref 0 in
  let stats = ref (0, 0) in
  let timed_edit mk =
    best (fun () ->
        n := !n + 1;
        mk !n;
        let dt, r = time rebuild in
        assert (not r.I.fallback);
        stats := (r.I.reanalyzed, r.I.reused);
        dt)
  in
  let header_s =
    timed_edit (fun i ->
        append "generated.h" (Printf.sprintf "int b9_h_%d(int);\n" i))
  in
  let h_rean, h_reused = !stats in
  let tu_s =
    timed_edit (fun i ->
        append "tu0.cpp" (Printf.sprintf "int b9_tu_%d() { return %d; }\n" i i))
  in
  let t_rean, t_reused = !stats in
  (* trailing whitespace only: key-invariant, everything must be reused *)
  let noop_s = timed_edit (fun _ -> append "tu1.cpp" "   \n") in
  let n_rean, n_reused = !stats in
  rm_rf cache_dir;
  let speedup a = cold_s /. a in
  Printf.printf "project: %d TUs + main, %d domains, best of %d\n\n" n_tus
    domains reps;
  Printf.printf "cold build (no cache)     : %.3fs\n" cold_s;
  Printf.printf "incremental seed          : %.3fs\n" seed_s;
  Printf.printf
    "header edit rebuild       : %.3fs  (%.1fx, reanalyzed=%d reused=%d)\n"
    header_s (speedup header_s) h_rean h_reused;
  Printf.printf
    "TU-body edit rebuild      : %.3fs  (%.1fx, reanalyzed=%d reused=%d)\n"
    tu_s (speedup tu_s) t_rean t_reused;
  Printf.printf
    "whitespace no-op rebuild  : %.3fs  (%.1fx, reanalyzed=%d reused=%d)\n"
    noop_s (speedup noop_s) n_rean n_reused;
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"incremental_rebuild\",\n\
    \  \"quick\": %b,\n\
    \  \"n_tus\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"cold_s\": %.4f,\n\
    \  \"seed_s\": %.4f,\n\
    \  \"header_edit_s\": %.4f,\n\
    \  \"header_reanalyzed\": %d,\n\
    \  \"header_reused\": %d,\n\
    \  \"tu_edit_s\": %.4f,\n\
    \  \"tu_reanalyzed\": %d,\n\
    \  \"tu_reused\": %d,\n\
    \  \"noop_edit_s\": %.4f,\n\
    \  \"noop_reanalyzed\": %d,\n\
    \  \"noop_reused\": %d,\n\
    \  \"speedup_tu_edit\": %.2f,\n\
    \  \"speedup_noop\": %.2f\n\
     }\n"
    quick n_tus domains reps cold_s seed_s header_s h_rean h_reused tu_s t_rean
    t_reused noop_s n_rean n_reused (speedup tu_s) (speedup noop_s);
  close_out oc;
  print_endline "wrote BENCH_incremental.json"

(* ------------------------------------------------------------------ *)
(* B10: container scaling, ASCII vs PDB-B binary                       *)
(* ------------------------------------------------------------------ *)

let b10_pdb_scale ~quick ~domains () =
  section "B10: PDB container scaling — ASCII vs PDB-B binary (mmap)";
  (* Corpus: a compiled template-heavy project, replicated with renamed
     items (Generator.replicate_corpus) so the merge cannot deduplicate
     the clones — the merged PDB grows linearly with the replica count,
     synthesizing a production-size database without paying thousands of
     front-end compiles. *)
  let n_tus = if quick then 4 else 8 in
  let replicas = if quick then 5 else 40 in
  let cfg =
    { Pdt_workloads.Generator.default_config with
      n_class_templates = (if quick then 12 else 24);
      methods_per_class = 6; chain_depth = 4;
      n_instantiation_types = (if quick then 4 else 6) }
  in
  let vfs, files = Pdt_workloads.Generator.project_vfs ~cfg ~n_tus () in
  let base =
    List.map
      (fun f -> Pdt_analyzer.Analyzer.run (Pdt.compile_exn ~vfs f).Pdt.program)
      files
  in
  let units = Pdt_workloads.Generator.replicate_corpus ~replicas base in
  let merged = D.merge units in
  let ascii = Pdt_pdb.Pdb_write.to_string merged in
  let bin = Pdt_pdb.Pdb_bin.to_string merged in
  let reps = if quick then 5 else 3 in
  let cpu_once f =
    Gc.full_major ();
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let wall_once f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let best time_once f =
    let best = ref infinity in
    for _ = 1 to reps do
      let dt = time_once f in
      if dt < !best then best := dt
    done;
    !best
  in
  (* on-disk corpus: the merged PDB and every unit PDB, in both containers *)
  let dir = Filename.temp_file "pdt-bench-b10" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let apath = Filename.concat dir "merged.pdb"
  and bpath = Filename.concat dir "merged.pdbb" in
  write apath ascii;
  write bpath bin;
  let unit_paths =
    List.mapi
      (fun i p ->
        let a = Filename.concat dir (Printf.sprintf "unit_%03d.pdb" i) in
        let b = Filename.concat dir (Printf.sprintf "unit_%03d.pdbb" i) in
        write a (Pdt_pdb.Pdb_write.to_string p);
        write b (Pdt_pdb.Pdb_bin.to_string p);
        (a, b))
      units
  in
  (* warm-up: populate the intern pool and touch every code path once, so
     the two containers compete from the same steady state *)
  Pdt_util.Intern.clear ();
  ignore (Pdt_pdb.Pdb_parse.of_string ascii);
  ignore (Pdt_pdb.Pdb_bin.of_string bin);
  (* in-memory parse: full Pdb.t materialization from bytes *)
  let t_parse_a = best cpu_once (fun () -> ignore (Pdt_pdb.Pdb_parse.of_string ascii)) in
  let t_parse_b = best cpu_once (fun () -> ignore (Pdt_pdb.Pdb_bin.of_string bin)) in
  (* cold index load: file on disk -> fully indexed Ductape value *)
  let t_index_a = best wall_once (fun () -> ignore (D.of_file apath)) in
  let t_index_b = best wall_once (fun () -> ignore (D.of_file bpath)) in
  (* the mmap view: file on disk -> validated, queryable id index, records
     and strings decoded only on demand.  Measured bare (open only) and
     with a first real query: resolve main and decode its callees. *)
  let t_view = best wall_once (fun () -> ignore (Pdt_pdb.Pdb_bin.View.of_file bpath)) in
  let t_view_query =
    best wall_once (fun () ->
        let v = Pdt_pdb.Pdb_bin.View.of_file bpath in
        match Pdt_pdb.Pdb_bin.View.find_routine v "main" with
        | None -> failwith "b10: merged corpus has no main routine"
        | Some r ->
            List.iter
              (fun (c : P.call) ->
                ignore (Pdt_pdb.Pdb_bin.View.routine_by_id v c.P.c_callee))
              r.P.ro_calls)
  in
  (* ASCII cold load of the same file, for the headline ratio *)
  let t_parse_file_a = best wall_once (fun () -> ignore (Pdt_pdb.Pdb_parse.of_file apath)) in
  let cold_load_speedup = t_parse_file_a /. t_view_query in
  (* merge-from-disk curve: load every unit PDB of one container and merge
     at each requested domain count; counts beyond the host's cores are
     recorded as skipped, never run oversubscribed *)
  let cores = Domain.recommended_domain_count () in
  let merge_from paths d =
    let pdbs = List.map Pdt_pdb.Pdb_io.of_file paths in
    if d = 1 then ignore (D.merge pdbs)
    else ignore (Pdt_build.Merge_par.merge ~domains:d pdbs)
  in
  let merge_curve =
    List.map
      (fun d ->
        if d <= cores then
          let ta = best wall_once (fun () -> merge_from (List.map fst unit_paths) d) in
          let tb = best wall_once (fun () -> merge_from (List.map snd unit_paths) d) in
          (d, Some (ta, tb))
        else (d, None))
      domains
  in
  List.iter (fun (a, b) -> Sys.remove a; Sys.remove b) unit_paths;
  Sys.remove apath;
  Sys.remove bpath;
  Unix.rmdir dir;
  let ns t = t *. 1e9 in
  Printf.printf
    "corpus: %d unit PDBs (%d TUs x %d replicas), merged %d items, \
     %d bytes ASCII, %d bytes binary; best of %d\n\n"
    (List.length units) (List.length files) replicas
    (Pdt_pdb.Pdb.item_count merged) (String.length ascii) (String.length bin)
    reps;
  Printf.printf "%-34s %14s %14s %8s\n" "operation (merged PDB)" "ASCII ns"
    "binary ns" "speedup";
  let row name ta tb =
    Printf.printf "%-34s %14.0f %14.0f %7.1fx\n" name (ns ta) (ns tb) (ta /. tb)
  in
  row "parse (bytes -> Pdb.t)" t_parse_a t_parse_b;
  row "cold index load (file -> Ductape)" t_index_a t_index_b;
  Printf.printf "%-34s %14s %14.0f\n" "mmap view open (file -> queryable)" "-"
    (ns t_view);
  Printf.printf "%-34s %14.0f %14.0f %7.1fx  <- headline\n"
    "cold query (parse vs view+query)" (ns t_parse_file_a) (ns t_view_query)
    cold_load_speedup;
  Printf.printf "\nmerge from disk (%d unit PDBs):\n" (List.length units);
  List.iter
    (fun (d, t) ->
      match t with
      | Some (ta, tb) ->
          Printf.printf
            "  %d domain%s: ASCII %.0f ns, binary %.0f ns (%.1fx)\n" d
            (if d = 1 then " " else "s") (ns ta) (ns tb) (ta /. tb)
      | None ->
          Printf.printf "  %d domains: skipped (host has %d core%s)\n" d cores
            (if cores = 1 then "" else "s"))
    merge_curve;
  let oc = open_out "BENCH_pdb_scale.json" in
  let curve_json =
    String.concat ",\n"
      (List.map
         (fun (d, t) ->
           match t with
           | Some (ta, tb) ->
               Printf.sprintf
                 "    { \"domains\": %d, \"ascii_ns\": %.0f, \"binary_ns\": \
                  %.0f, \"speedup\": %.2f, \"skipped\": false }"
                 d (ns ta) (ns tb) (ta /. tb)
           | None ->
               Printf.sprintf
                 "    { \"domains\": %d, \"skipped\": true, \"host_cores\": %d }"
                 d cores)
         merge_curve)
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pdb_scale\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"corpus\": { \"tus\": %d, \"replicas\": %d, \"unit_pdbs\": %d,\n\
    \              \"merged_items\": %d, \"ascii_bytes\": %d, \"binary_bytes\": %d },\n\
    \  \"parse\": { \"ascii_ns\": %.0f, \"binary_ns\": %.0f, \"speedup\": %.2f },\n\
    \  \"cold_index\": { \"ascii_ns\": %.0f, \"binary_ns\": %.0f, \"speedup\": %.2f },\n\
    \  \"mmap_view\": { \"open_ns\": %.0f, \"open_query_ns\": %.0f,\n\
    \                 \"ascii_parse_ns\": %.0f },\n\
    \  \"cold_load_speedup\": %.2f,\n\
    \  \"merge\": [\n%s\n  ]\n\
     }\n"
    quick cores (List.length files) replicas (List.length units)
    (Pdt_pdb.Pdb.item_count merged) (String.length ascii) (String.length bin)
    (ns t_parse_a) (ns t_parse_b) (t_parse_a /. t_parse_b)
    (ns t_index_a) (ns t_index_b) (t_index_a /. t_index_b)
    (ns t_view) (ns t_view_query) (ns t_parse_file_a)
    cold_load_speedup
    curve_json;
  close_out oc;
  print_endline "wrote BENCH_pdb_scale.json"

(* ------------------------------------------------------------------ *)
(* Specialization-mapping ablation                                     *)
(* ------------------------------------------------------------------ *)

let specialization_mapping () =
  section "Ablation: specialization back-mapping (§3.1 limitation and remedy)";
  let src =
    "template <class T> class Traits { public: int size() { return 1; } };\n\
     template <> class Traits<char> { public: int size() { return 99; } };\n\
     template <class T> class Traits<T *> { public: int size() { return 8; } };\n\
     int main() { Traits<int> a; Traits<char> b; Traits<double *> c;\n\
     \  return a.size() + b.size() + c.size(); }"
  in
  let opts = { Pdt_sema.Sema.default_options with map_specializations = true } in
  let c = Pdt.compile_string ~opts src in
  let count mapping =
    let pdb =
      Pdt_analyzer.Analyzer.run
        ~opts:{ Pdt_analyzer.Analyzer.default_options with mapping }
        c.Pdt.program
    in
    let mapped =
      List.length
        (List.filter
           (fun (cl : P.class_item) -> cl.cl_templ <> None || cl.cl_stempl <> None)
           pdb.P.classes)
    in
    let total =
      List.length
        (List.filter (fun (cl : P.class_item) -> String.contains cl.P.cl_name '<') pdb.P.classes)
    in
    (mapped, total)
  in
  let m_loc, total = count Pdt_analyzer.Analyzer.Location_based in
  let m_ids, _ = count Pdt_analyzer.Analyzer.Il_ids in
  Printf.printf "instantiations+specializations : %d\n" total;
  Printf.printf "mapped, location-based (paper) : %d  (specializations unmapped)\n" m_loc;
  Printf.printf "mapped, IL ids (proposed fix)  : %d\n" m_ids

(* ------------------------------------------------------------------ *)
(* B12: the process farm vs the Domain pool, and crash-recovery cost   *)
(* ------------------------------------------------------------------ *)

(* Two questions: what does process isolation cost over in-process
   Domains on the same project (spawn + Config shipping + frame I/O),
   and what does a mid-unit worker kill cost end-to-end (death detection
   + respawn + requeued unit)?  Skipped-but-recorded when the worker
   binary is not built, like the oversubscribed points of B7/B10. *)
let b12_farm ~quick () =
  section "B12: build farm (process workers) vs Domain pool";
  let module Farm = Pdt_build.Farm in
  let module F = Pdt_util.Fault in
  match Farm.find_worker () with
  | None ->
      print_endline "pdbworker.exe not found next to the bench: skipped";
      let oc = open_out "BENCH_farm.json" in
      Printf.fprintf oc "{\n  \"bench\": \"farm\",\n  \"skipped\": true\n}\n";
      close_out oc;
      print_endline "wrote BENCH_farm.json"
  | Some exe ->
      Unix.putenv "PDT_PDBWORKER" exe;
      let n_tus = if quick then 8 else 20 in
      let workers = 4 in
      let reps = if quick then 2 else 3 in
      let best f = List.fold_left min infinity (List.init reps (fun _ -> f ())) in
      let options =
        { Pdt_build.Build.default_options with
          domains = workers; cache_dir = None; retries = 4 }
      in
      let farm_config =
        { Farm.default_config with
          workers; heartbeat_ms = 10; liveness_timeout = 1.0;
          backoff_initial = 0.01; backoff_max = 0.05 }
      in
      let pool_build () =
        let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
        let t0 = Unix.gettimeofday () in
        let r = Pdt_build.Build.build ~options ~vfs sources in
        assert (r.Pdt_build.Build.failed = 0);
        Unix.gettimeofday () -. t0
      in
      let farm_build () =
        let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
        let t0 = Unix.gettimeofday () in
        let r = Farm.build ~config:farm_config ~options ~vfs sources in
        assert (r.Pdt_build.Build.failed = 0);
        Unix.gettimeofday () -. t0
      in
      ignore (pool_build ());  (* warm up allocators and code paths *)
      let pool_s = best pool_build in
      let farm_s = best farm_build in
      (* recovery latency: the same farm build under a seeded mid-unit
         kill schedule (PDT_FAULT_SPEC reaches the workers through the
         environment); the delta over the fault-free farm run prices
         death detection + respawn + the requeued unit *)
      let respawns_before =
        match
          List.find_opt (fun (n, _, _) -> n = "farm.respawn")
            (Pdt_util.Perf.snapshot ())
        with
        | Some (_, calls, _) -> calls
        | None -> 0
      in
      let kill_rate = 0.1 and kill_seed = 11 in
      Unix.putenv F.env_var
        (F.spec_string ~sites:[ "farm.worker.kill" ] ~seed:kill_seed
           ~rate:kill_rate ());
      let kill_clean, kill_s =
        Fun.protect
          ~finally:(fun () -> Unix.putenv F.env_var "")
          (fun () ->
            let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
            let t0 = Unix.gettimeofday () in
            let r = Farm.build ~config:farm_config ~options ~vfs sources in
            (r.Pdt_build.Build.failed = 0, Unix.gettimeofday () -. t0))
      in
      let respawns =
        (match
           List.find_opt (fun (n, _, _) -> n = "farm.respawn")
             (Pdt_util.Perf.snapshot ())
         with
         | Some (_, calls, _) -> calls
         | None -> 0)
        - respawns_before
      in
      let overhead_pct = (farm_s -. pool_s) /. pool_s *. 100.0 in
      let recovery_pct = (kill_s -. farm_s) /. farm_s *. 100.0 in
      Printf.printf "project: %d TUs + main, %d workers, no cache, best of %d\n\n"
        n_tus workers reps;
      Printf.printf "Domain pool               : %.3fs\n" pool_s;
      Printf.printf "process farm              : %.3fs  (%+.1f%% vs pool)\n"
        farm_s overhead_pct;
      Printf.printf
        "farm under kill schedule  : %.3fs  (%+.1f%% vs clean farm, rate %.2f, %d respawn%s, %s)\n"
        kill_s recovery_pct kill_rate respawns
        (if respawns = 1 then "" else "s")
        (if kill_clean then "recovered clean" else "degraded");
      let oc = open_out "BENCH_farm.json" in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"farm\",\n\
        \  \"skipped\": false,\n\
        \  \"quick\": %b,\n\
        \  \"n_tus\": %d,\n\
        \  \"workers\": %d,\n\
        \  \"reps\": %d,\n\
        \  \"pool_s\": %.4f,\n\
        \  \"farm_s\": %.4f,\n\
        \  \"farm_overhead_pct\": %.2f,\n\
        \  \"kill\": {\n\
        \    \"rate\": %.2f,\n\
        \    \"seed\": %d,\n\
        \    \"wall_s\": %.4f,\n\
        \    \"recovery_overhead_pct\": %.2f,\n\
        \    \"respawns\": %d,\n\
        \    \"clean\": %b\n\
        \  }\n\
         }\n"
        quick n_tus workers reps pool_s farm_s overhead_pct kill_rate kill_seed
        kill_s recovery_pct respawns kill_clean;
      close_out oc;
      print_endline "wrote BENCH_farm.json"

(* ------------------------------------------------------------------ *)
(* B13: semantic analyses — define-use chains and MHP                  *)
(* ------------------------------------------------------------------ *)

(* Two costs.  The define-use pass runs inside the analyzer (there is no
   off switch), so the build side reports attribute volume and the query
   side reports chain-rendering throughput over every (routine, variable)
   pair of a generated project.  The MHP relation is never stored — it is
   derived per query by Mhp.compute — so we sweep spawn-ladder programs
   of growing width and price the derivation against the size of the
   pair set it produces. *)
let b13_semantic ~quick () =
  section "B13: semantic analyses (define-use chains, MHP)";
  let module M = Pdt_analyzer.Mhp in
  let module Duct = Pdt_tools.Duct in
  let reps = if quick then 2 else 3 in
  let best f = List.fold_left min infinity (List.init reps (fun _ -> f ())) in
  (* define-use: one single-Domain build of a generated project; the
     attribute totals make regressions in pass coverage visible *)
  let n_tus = if quick then 6 else 16 in
  let options =
    { Pdt_build.Build.default_options with domains = 1; cache_dir = None }
  in
  let vfs, sources = Pdt_workloads.Generator.project_vfs ~n_tus () in
  let build_once () =
    let t0 = Unix.gettimeofday () in
    let r = Pdt_build.Build.build ~options ~vfs sources in
    assert (r.Pdt_build.Build.failed = 0);
    (r.Pdt_build.Build.merged, Unix.gettimeofday () -. t0)
  in
  let merged, _ = build_once () in
  let build_s = best (fun () -> snd (build_once ())) in
  let du_vars, du_uses, du_uninit =
    List.fold_left
      (fun acc (r : P.routine_item) ->
        List.fold_left
          (fun (v, u, un) (dv : P.du_var) ->
            ( v + 1,
              u + List.length dv.P.v_uses,
              un
              + List.length
                  (List.filter (fun (x : P.du_use) -> x.P.u_uninit) dv.P.v_uses)
            ))
          acc r.P.ro_du)
      (0, 0, 0) merged.P.routines
  in
  let d = D.index merged in
  let chain_queries = ref 0 in
  let chain_pass () =
    let t0 = Unix.gettimeofday () in
    chain_queries := 0;
    List.iter
      (fun (r : P.routine_item) ->
        List.iter
          (fun (dv : P.du_var) ->
            ignore (Duct.chain_text d r dv);
            incr chain_queries)
          r.P.ro_du)
      merged.P.routines;
    Unix.gettimeofday () -. t0
  in
  let chain_s = best chain_pass in
  let chain_us =
    if !chain_queries = 0 then 0.0
    else chain_s *. 1e6 /. float_of_int !chain_queries
  in
  Printf.printf
    "define-use: %d TUs + main, single Domain, best of %d\n\n" n_tus reps;
  Printf.printf "build (front end + analyzer + DU) : %.3fs\n" build_s;
  Printf.printf "attribute volume                  : %d vars, %d uses (%d possibly uninitialized)\n"
    du_vars du_uses du_uninit;
  Printf.printf "chain queries (all routine/var)   : %d in %.4fs  (%.1f us/query)\n"
    !chain_queries chain_s chain_us;
  (* MHP: spawn ladders — main spawns k routines, all windows overlap,
     then joins them all; pairs grow ~k^2/2, so the sweep prices the
     query-time derivation against its own output size *)
  let spawn_program ~k =
    let b = Buffer.create 1024 in
    let pr fmt =
      Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n')
        fmt
    in
    for i = 0 to k - 1 do pr "int f%d() { return %d; }" i i done;
    pr "int main() {";
    for i = 0 to k - 1 do pr "  spawn f%d();" i done;
    for i = 0 to k - 1 do pr "  join f%d;" i done;
    pr "  return 0;";
    pr "}";
    Buffer.contents b
  in
  let ks = if quick then [ 4; 16 ] else [ 4; 16; 64; 128 ] in
  let mhp_points =
    List.map
      (fun k ->
        let c = Pdt.compile_string (spawn_program ~k) in
        assert (not (Pdt_util.Diag.has_errors c.Pdt.diags));
        let pdb = Pdt_analyzer.Analyzer.run c.Pdt.program in
        let compute_s = best (fun () ->
          let t0 = Unix.gettimeofday () in
          ignore (M.compute pdb);
          Unix.gettimeofday () -. t0)
        in
        let m = M.compute pdb in
        let sites =
          List.fold_left
            (fun acc (r : P.routine_item) -> acc + List.length r.P.ro_spawns)
            0 pdb.P.routines
        in
        (k, List.length pdb.P.routines, sites, List.length (M.pairs m),
         compute_s))
      ks
  in
  sub "Mhp.compute over spawn ladders";
  List.iter
    (fun (k, routines, sites, pairs, s) ->
      Printf.printf "k=%3d : %3d routines, %3d sites -> %5d pairs in %.5fs\n"
        k routines sites pairs s)
    mhp_points;
  let oc = open_out "BENCH_pdb_semantic.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pdb_semantic\",\n\
    \  \"quick\": %b,\n\
    \  \"du\": {\n\
    \    \"n_tus\": %d,\n\
    \    \"build_s\": %.4f,\n\
    \    \"vars\": %d,\n\
    \    \"uses\": %d,\n\
    \    \"uninit\": %d,\n\
    \    \"chain_queries\": %d,\n\
    \    \"chain_wall_s\": %.5f,\n\
    \    \"chain_us_per_query\": %.2f\n\
    \  },\n\
    \  \"mhp\": [\n"
    quick n_tus build_s du_vars du_uses du_uninit !chain_queries chain_s
    chain_us;
  List.iteri
    (fun i (k, routines, sites, pairs, s) ->
      Printf.fprintf oc
        "    { \"k\": %d, \"routines\": %d, \"spawn_sites\": %d, \"pairs\": %d, \"compute_s\": %.6f }%s\n"
        k routines sites pairs s
        (if i = List.length mhp_points - 1 then "" else ","))
    mhp_points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  print_endline "wrote BENCH_pdb_semantic.json"

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let domains = requested_domains () in
  fig1 ();
  fig3 ();
  table1 ();
  fig4 ();
  table2_fig5 ();
  fig6_fig7 ();
  fig8 ();
  parallel_profile ();
  b1_instantiation_modes ();
  b2_pdbmerge_scaling ();
  b6_parallel_build ();
  b7_pdb_io ~quick ~domains ();
  b8_trace_overhead ~quick ();
  b9_incremental ~quick ();
  b10_pdb_scale ~quick ~domains ();
  b12_farm ~quick ();
  b13_semantic ~quick ();
  specialization_mapping ();
  if not quick then bechamel_benches ();
  print_newline ()
